
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/matmul_kernels.cpp" "src/CMakeFiles/epi_core.dir/core/matmul_kernels.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/matmul_kernels.cpp.o.d"
  "/root/repo/src/core/matmul_schedule.cpp" "src/CMakeFiles/epi_core.dir/core/matmul_schedule.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/matmul_schedule.cpp.o.d"
  "/root/repo/src/core/microbench.cpp" "src/CMakeFiles/epi_core.dir/core/microbench.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/microbench.cpp.o.d"
  "/root/repo/src/core/stencil_kernels.cpp" "src/CMakeFiles/epi_core.dir/core/stencil_kernels.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/stencil_kernels.cpp.o.d"
  "/root/repo/src/core/stencil_pipeline.cpp" "src/CMakeFiles/epi_core.dir/core/stencil_pipeline.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/stencil_pipeline.cpp.o.d"
  "/root/repo/src/core/stencil_schedule.cpp" "src/CMakeFiles/epi_core.dir/core/stencil_schedule.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/stencil_schedule.cpp.o.d"
  "/root/repo/src/core/summa.cpp" "src/CMakeFiles/epi_core.dir/core/summa.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/core/summa.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/epi_core.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/interpreter.cpp" "src/CMakeFiles/epi_core.dir/isa/interpreter.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/isa/interpreter.cpp.o.d"
  "/root/repo/src/isa/kernels.cpp" "src/CMakeFiles/epi_core.dir/isa/kernels.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/isa/kernels.cpp.o.d"
  "/root/repo/src/offload/queue.cpp" "src/CMakeFiles/epi_core.dir/offload/queue.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/offload/queue.cpp.o.d"
  "/root/repo/src/util/reference.cpp" "src/CMakeFiles/epi_core.dir/util/reference.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/util/reference.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/epi_core.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/epi_core.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
