# Empty compiler generated dependencies file for matmul_app.
# This may be replaced when dependencies are built.
