file(REMOVE_RECURSE
  "CMakeFiles/matmul_app.dir/matmul_app.cpp.o"
  "CMakeFiles/matmul_app.dir/matmul_app.cpp.o.d"
  "matmul_app"
  "matmul_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
