file(REMOVE_RECURSE
  "CMakeFiles/image_blur.dir/image_blur.cpp.o"
  "CMakeFiles/image_blur.dir/image_blur.cpp.o.d"
  "image_blur"
  "image_blur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_blur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
