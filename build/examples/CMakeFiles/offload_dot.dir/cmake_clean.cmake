file(REMOVE_RECURSE
  "CMakeFiles/offload_dot.dir/offload_dot.cpp.o"
  "CMakeFiles/offload_dot.dir/offload_dot.cpp.o.d"
  "offload_dot"
  "offload_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
