# Empty compiler generated dependencies file for offload_dot.
# This may be replaced when dependencies are built.
