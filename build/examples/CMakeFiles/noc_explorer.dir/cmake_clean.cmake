file(REMOVE_RECURSE
  "CMakeFiles/noc_explorer.dir/noc_explorer.cpp.o"
  "CMakeFiles/noc_explorer.dir/noc_explorer.cpp.o.d"
  "noc_explorer"
  "noc_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
