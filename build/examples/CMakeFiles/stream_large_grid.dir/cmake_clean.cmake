file(REMOVE_RECURSE
  "CMakeFiles/stream_large_grid.dir/stream_large_grid.cpp.o"
  "CMakeFiles/stream_large_grid.dir/stream_large_grid.cpp.o.d"
  "stream_large_grid"
  "stream_large_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_large_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
