# Empty dependencies file for stream_large_grid.
# This may be replaced when dependencies are built.
