# Empty compiler generated dependencies file for tab04_matmul_single.
# This may be replaced when dependencies are built.
