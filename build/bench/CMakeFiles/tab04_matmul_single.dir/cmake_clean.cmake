file(REMOVE_RECURSE
  "CMakeFiles/tab04_matmul_single.dir/tab04_matmul_single.cpp.o"
  "CMakeFiles/tab04_matmul_single.dir/tab04_matmul_single.cpp.o.d"
  "tab04_matmul_single"
  "tab04_matmul_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_matmul_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
