file(REMOVE_RECURSE
  "CMakeFiles/tab01_distance.dir/tab01_distance.cpp.o"
  "CMakeFiles/tab01_distance.dir/tab01_distance.cpp.o.d"
  "tab01_distance"
  "tab01_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
