# Empty dependencies file for tab01_distance.
# This may be replaced when dependencies are built.
