# Empty compiler generated dependencies file for tab02_elink4.
# This may be replaced when dependencies are built.
