file(REMOVE_RECURSE
  "CMakeFiles/tab02_elink4.dir/tab02_elink4.cpp.o"
  "CMakeFiles/tab02_elink4.dir/tab02_elink4.cpp.o.d"
  "tab02_elink4"
  "tab02_elink4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_elink4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
