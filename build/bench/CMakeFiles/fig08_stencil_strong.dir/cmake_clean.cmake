file(REMOVE_RECURSE
  "CMakeFiles/fig08_stencil_strong.dir/fig08_stencil_strong.cpp.o"
  "CMakeFiles/fig08_stencil_strong.dir/fig08_stencil_strong.cpp.o.d"
  "fig08_stencil_strong"
  "fig08_stencil_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_stencil_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
