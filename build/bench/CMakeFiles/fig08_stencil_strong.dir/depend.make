# Empty dependencies file for fig08_stencil_strong.
# This may be replaced when dependencies are built.
