# Empty compiler generated dependencies file for fig15_matmul_strong.
# This may be replaced when dependencies are built.
