file(REMOVE_RECURSE
  "CMakeFiles/fig15_matmul_strong.dir/fig15_matmul_strong.cpp.o"
  "CMakeFiles/fig15_matmul_strong.dir/fig15_matmul_strong.cpp.o.d"
  "fig15_matmul_strong"
  "fig15_matmul_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_matmul_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
