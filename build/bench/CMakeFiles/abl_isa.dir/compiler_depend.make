# Empty compiler generated dependencies file for abl_isa.
# This may be replaced when dependencies are built.
