file(REMOVE_RECURSE
  "CMakeFiles/abl_isa.dir/abl_isa.cpp.o"
  "CMakeFiles/abl_isa.dir/abl_isa.cpp.o.d"
  "abl_isa"
  "abl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
