# Empty dependencies file for tab03_elink64.
# This may be replaced when dependencies are built.
