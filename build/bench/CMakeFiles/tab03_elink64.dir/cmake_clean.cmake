file(REMOVE_RECURSE
  "CMakeFiles/tab03_elink64.dir/tab03_elink64.cpp.o"
  "CMakeFiles/tab03_elink64.dir/tab03_elink64.cpp.o.d"
  "tab03_elink64"
  "tab03_elink64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_elink64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
