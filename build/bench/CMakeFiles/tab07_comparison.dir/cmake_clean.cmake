file(REMOVE_RECURSE
  "CMakeFiles/tab07_comparison.dir/tab07_comparison.cpp.o"
  "CMakeFiles/tab07_comparison.dir/tab07_comparison.cpp.o.d"
  "tab07_comparison"
  "tab07_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
