# Empty dependencies file for tab07_comparison.
# This may be replaced when dependencies are built.
