# Empty compiler generated dependencies file for tab05_matmul_onchip.
# This may be replaced when dependencies are built.
