file(REMOVE_RECURSE
  "CMakeFiles/tab05_matmul_onchip.dir/tab05_matmul_onchip.cpp.o"
  "CMakeFiles/tab05_matmul_onchip.dir/tab05_matmul_onchip.cpp.o.d"
  "tab05_matmul_onchip"
  "tab05_matmul_onchip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_matmul_onchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
