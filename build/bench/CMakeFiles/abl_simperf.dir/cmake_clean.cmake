file(REMOVE_RECURSE
  "CMakeFiles/abl_simperf.dir/abl_simperf.cpp.o"
  "CMakeFiles/abl_simperf.dir/abl_simperf.cpp.o.d"
  "abl_simperf"
  "abl_simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
