# Empty compiler generated dependencies file for abl_simperf.
# This may be replaced when dependencies are built.
