file(REMOVE_RECURSE
  "CMakeFiles/fig07_stencil_weak.dir/fig07_stencil_weak.cpp.o"
  "CMakeFiles/fig07_stencil_weak.dir/fig07_stencil_weak.cpp.o.d"
  "fig07_stencil_weak"
  "fig07_stencil_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stencil_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
