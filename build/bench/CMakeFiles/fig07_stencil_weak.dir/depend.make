# Empty dependencies file for fig07_stencil_weak.
# This may be replaced when dependencies are built.
