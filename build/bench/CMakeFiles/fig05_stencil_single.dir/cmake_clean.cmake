file(REMOVE_RECURSE
  "CMakeFiles/fig05_stencil_single.dir/fig05_stencil_single.cpp.o"
  "CMakeFiles/fig05_stencil_single.dir/fig05_stencil_single.cpp.o.d"
  "fig05_stencil_single"
  "fig05_stencil_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stencil_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
