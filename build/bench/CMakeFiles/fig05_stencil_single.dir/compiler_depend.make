# Empty compiler generated dependencies file for fig05_stencil_single.
# This may be replaced when dependencies are built.
