# Empty dependencies file for tab06_matmul_offchip.
# This may be replaced when dependencies are built.
