file(REMOVE_RECURSE
  "CMakeFiles/tab06_matmul_offchip.dir/tab06_matmul_offchip.cpp.o"
  "CMakeFiles/tab06_matmul_offchip.dir/tab06_matmul_offchip.cpp.o.d"
  "tab06_matmul_offchip"
  "tab06_matmul_offchip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_matmul_offchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
