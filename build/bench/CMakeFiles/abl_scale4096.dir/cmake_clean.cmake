file(REMOVE_RECURSE
  "CMakeFiles/abl_scale4096.dir/abl_scale4096.cpp.o"
  "CMakeFiles/abl_scale4096.dir/abl_scale4096.cpp.o.d"
  "abl_scale4096"
  "abl_scale4096.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scale4096.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
