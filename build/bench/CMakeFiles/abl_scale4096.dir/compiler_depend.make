# Empty compiler generated dependencies file for abl_scale4096.
# This may be replaced when dependencies are built.
