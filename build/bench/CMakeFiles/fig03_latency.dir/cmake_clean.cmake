file(REMOVE_RECURSE
  "CMakeFiles/fig03_latency.dir/fig03_latency.cpp.o"
  "CMakeFiles/fig03_latency.dir/fig03_latency.cpp.o.d"
  "fig03_latency"
  "fig03_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
