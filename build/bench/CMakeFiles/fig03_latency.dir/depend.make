# Empty dependencies file for fig03_latency.
# This may be replaced when dependencies are built.
