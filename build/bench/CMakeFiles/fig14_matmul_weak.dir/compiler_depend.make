# Empty compiler generated dependencies file for fig14_matmul_weak.
# This may be replaced when dependencies are built.
