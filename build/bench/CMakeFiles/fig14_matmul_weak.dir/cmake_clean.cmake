file(REMOVE_RECURSE
  "CMakeFiles/fig14_matmul_weak.dir/fig14_matmul_weak.cpp.o"
  "CMakeFiles/fig14_matmul_weak.dir/fig14_matmul_weak.cpp.o.d"
  "fig14_matmul_weak"
  "fig14_matmul_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_matmul_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
