file(REMOVE_RECURSE
  "CMakeFiles/abl_codegen.dir/abl_codegen.cpp.o"
  "CMakeFiles/abl_codegen.dir/abl_codegen.cpp.o.d"
  "abl_codegen"
  "abl_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
