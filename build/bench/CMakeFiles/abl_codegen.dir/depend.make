# Empty dependencies file for abl_codegen.
# This may be replaced when dependencies are built.
