# Empty dependencies file for abl_comm_schemes.
# This may be replaced when dependencies are built.
