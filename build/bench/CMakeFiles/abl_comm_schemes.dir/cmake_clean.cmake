file(REMOVE_RECURSE
  "CMakeFiles/abl_comm_schemes.dir/abl_comm_schemes.cpp.o"
  "CMakeFiles/abl_comm_schemes.dir/abl_comm_schemes.cpp.o.d"
  "abl_comm_schemes"
  "abl_comm_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_comm_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
