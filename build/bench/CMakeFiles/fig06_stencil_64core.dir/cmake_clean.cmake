file(REMOVE_RECURSE
  "CMakeFiles/fig06_stencil_64core.dir/fig06_stencil_64core.cpp.o"
  "CMakeFiles/fig06_stencil_64core.dir/fig06_stencil_64core.cpp.o.d"
  "fig06_stencil_64core"
  "fig06_stencil_64core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stencil_64core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
