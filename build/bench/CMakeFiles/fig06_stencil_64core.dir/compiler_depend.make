# Empty compiler generated dependencies file for fig06_stencil_64core.
# This may be replaced when dependencies are built.
