// Unit tests for the DMA descriptors and channels: functional semantics
// (against memcpy references), rates, chaining, and contention.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "machine/machine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace {

using namespace epi;
using arch::Addr;
using arch::CoreCoord;
using sim::Cycles;

class DmaTest : public ::testing::Test {
protected:
  arch::MachineConfig cfg{};
  machine::Machine m{cfg};

  Addr g(CoreCoord c, Addr off) { return m.mem().map().global(c, off); }

  void fill(CoreCoord c, Addr off, std::span<const float> v) {
    m.mem().write_bytes(g(c, off), std::as_bytes(v), c);
  }
  std::vector<float> read(CoreCoord c, Addr off, std::size_t n) {
    std::vector<float> out(n);
    m.mem().read_bytes(g(c, off), std::as_writable_bytes(std::span(out)), c);
    return out;
  }

  /// Start a descriptor on channel 0 of `c` and run to completion.
  Cycles run_dma(CoreCoord c, const dma::DmaDescriptor& d) {
    auto& chan = m.core(c).dma[0];
    const Cycles t0 = m.engine().now();
    chan.start(d);
    sim::spawn(m.engine(), chan.wait());
    m.engine().run();
    return m.engine().now() - t0;
  }
};

TEST_F(DmaTest, LinearCopyBetweenCores) {
  std::vector<float> data(256);
  std::iota(data.begin(), data.end(), 0.0f);
  fill({0, 0}, 0x4000, data);
  auto d = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 1024);
  run_dma({0, 0}, d);
  EXPECT_EQ(read({0, 1}, 0x5000, 256), data);
}

TEST_F(DmaTest, LinearPicksDwordWhenAligned) {
  auto d8 = dma::DmaDescriptor::linear(0x5000, 0x4000, 1024);
  EXPECT_EQ(d8.elem, dma::ElemSize::DWord);
  EXPECT_EQ(d8.inner_count, 128u);
  auto d4 = dma::DmaDescriptor::linear(0x5004, 0x4000, 1024);
  EXPECT_EQ(d4.elem, dma::ElemSize::Word);
  EXPECT_EQ(d4.inner_count, 256u);
}

TEST_F(DmaTest, DwordTwiceAsFastAsWord) {
  auto dw = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 4096);
  const Cycles t_dw = run_dma({0, 0}, dw);
  auto w = dw;
  w.elem = dma::ElemSize::Word;
  w.inner_count = 1024;
  const Cycles t_w = run_dma({0, 0}, w);
  // Twice the transactions at the same per-transaction cost; fixed overhead
  // dilutes the ratio slightly.
  EXPECT_GT(static_cast<double>(t_w) / static_cast<double>(t_dw), 1.6);
}

TEST_F(DmaTest, LargeTransferApproaches2GBps) {
  // Figure 2: DMA reaches ~2 GB/s for large messages.
  auto d = dma::DmaDescriptor::linear(g({0, 1}, 0x4000), g({0, 0}, 0x4000), 8192);
  const Cycles t = run_dma({0, 0}, d);
  const double gbps = 8192.0 / (static_cast<double>(t) / cfg.timing.clock_hz) / 1e9;
  EXPECT_GT(gbps, 1.5);
  EXPECT_LT(gbps, 2.4);
}

TEST_F(DmaTest, Strided2DGatherScatter) {
  // Copy a 4x8-float column-block out of a 16-float-wide matrix into a
  // contiguous buffer.
  std::vector<float> mat(16 * 16);
  sim::Rng rng(1);
  for (auto& v : mat) v = rng.next_float();
  fill({1, 1}, 0x4000, mat);
  auto d = dma::DmaDescriptor::strided(g({1, 2}, 0x4000), g({1, 1}, 0x4000) + (2 * 16 + 4) * 4,
                                       4, 8 * 4, 16 * 4, 8 * 4, dma::ElemSize::Word);
  run_dma({1, 1}, d);
  auto out = read({1, 2}, 0x4000, 32);
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 8; ++c) {
      EXPECT_EQ(out[r * 8 + c], mat[(2 + r) * 16 + 4 + c]) << r << "," << c;
    }
  }
}

TEST_F(DmaTest, StridedColumnTransfer) {
  // One float per row (the stencil's left/right edges): inner count 1.
  std::vector<float> mat(8 * 8);
  std::iota(mat.begin(), mat.end(), 0.0f);
  fill({0, 0}, 0x4000, mat);
  auto d = dma::DmaDescriptor::strided(g({0, 1}, 0x6000), g({0, 0}, 0x4000) + 3 * 4, 8, 4,
                                       8 * 4, 4, dma::ElemSize::Word);
  run_dma({0, 0}, d);
  auto out = read({0, 1}, 0x6000, 8);
  for (unsigned r = 0; r < 8; ++r) EXPECT_EQ(out[r], mat[r * 8 + 3]);
}

TEST_F(DmaTest, ChainedDescriptorsRunInOrder) {
  std::vector<float> a(64, 1.5f);
  std::vector<float> b(64, -2.5f);
  fill({0, 0}, 0x4000, a);
  fill({0, 0}, 0x4200, b);
  auto d1 = dma::DmaDescriptor::linear(g({0, 1}, 0x5200), g({0, 0}, 0x4200), 256);
  auto d0 = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 256);
  d0.chain = &d1;
  run_dma({0, 0}, d0);
  EXPECT_EQ(read({0, 1}, 0x5000, 64), a);
  EXPECT_EQ(read({0, 1}, 0x5200, 64), b);
}

TEST_F(DmaTest, ChainCostsMoreThanSingle) {
  auto single = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 512);
  const Cycles t1 = run_dma({0, 0}, single);
  auto c1 = dma::DmaDescriptor::linear(g({0, 1}, 0x5200), g({0, 0}, 0x4200), 256);
  auto c0 = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 256);
  c0.chain = &c1;
  const Cycles t2 = run_dma({0, 0}, c0);
  EXPECT_GT(t2, t1);  // same bytes + chain latency
}

TEST_F(DmaTest, StartBusyChannelThrows) {
  auto d = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 4096);
  auto& chan = m.core({0, 0}).dma[0];
  chan.start(d);
  EXPECT_THROW(chan.start(d), std::logic_error);
  sim::spawn(m.engine(), chan.wait());
  m.engine().run();
}

TEST_F(DmaTest, TwoChannelsRunConcurrently) {
  auto d0 = dma::DmaDescriptor::linear(g({0, 1}, 0x4000), g({0, 0}, 0x4000), 4096);
  auto d1 = dma::DmaDescriptor::linear(g({1, 0}, 0x4000), g({0, 0}, 0x5000), 4096);
  auto& c0 = m.core({0, 0}).dma[0];
  auto& c1 = m.core({0, 0}).dma[1];
  const Cycles t0 = m.engine().now();
  c0.start(d0);
  c1.start(d1);
  sim::spawn(m.engine(), c0.wait());
  sim::spawn(m.engine(), c1.wait());
  m.engine().run();
  const Cycles both = m.engine().now() - t0;
  // Disjoint paths: concurrent, not 2x.
  const Cycles one = run_dma({0, 0}, d0);
  EXPECT_LT(both, one + one / 2);
}

TEST_F(DmaTest, ToExternalUsesELinkRate) {
  auto d = dma::DmaDescriptor::linear(arch::AddressMap::kExternalBase, g({0, 0}, 0x4000),
                                      8192);
  const Cycles t = run_dma({0, 0}, d);
  const double mbps = 8192.0 / (static_cast<double>(t) / cfg.timing.clock_hz) / 1e6;
  // Section V-B: at most 150 MB/s into external DRAM.
  EXPECT_LE(mbps, 151.0);
  EXPECT_GE(mbps, 100.0);
}

TEST_F(DmaTest, FromExternalMovesData) {
  std::vector<float> data(512);
  std::iota(data.begin(), data.end(), 100.0f);
  m.mem().write_bytes(arch::AddressMap::kExternalBase + 0x1000, std::as_bytes(std::span(data)),
                      {0, 0});
  auto d = dma::DmaDescriptor::linear(g({2, 2}, 0x4000),
                                      arch::AddressMap::kExternalBase + 0x1000, 2048);
  run_dma({2, 2}, d);
  EXPECT_EQ(read({2, 2}, 0x4000, 512), data);
}

TEST_F(DmaTest, WaitOnIdleChannelReturnsImmediately) {
  auto& chan = m.core({0, 0}).dma[0];
  sim::spawn(m.engine(), chan.wait());
  m.engine().run();
  EXPECT_EQ(m.engine().now(), 0u);
}

TEST_F(DmaTest, BytesMovedAccounting) {
  auto& chan = m.core({0, 0}).dma[0];
  auto d = dma::DmaDescriptor::linear(g({0, 1}, 0x5000), g({0, 0}, 0x4000), 1024);
  run_dma({0, 0}, d);
  EXPECT_EQ(chan.bytes_moved(), 1024u);
}

// Parameterised semantics sweep: every (elem size, inner, outer, stride)
// combination must equal the reference element walk.
struct DescCase {
  dma::ElemSize elem;
  std::uint32_t inner, outer;
  std::int32_t si, di, so, dso;
};

class DmaDescSemantics : public DmaTest, public ::testing::WithParamInterface<DescCase> {};

TEST_P(DmaDescSemantics, MatchesReferenceWalk) {
  const auto& p = GetParam();
  const auto esz = static_cast<std::uint32_t>(static_cast<std::uint8_t>(p.elem));
  std::vector<std::byte> src_img(8192);
  sim::Rng rng(7);
  for (auto& b : src_img) b = static_cast<std::byte>(rng.next_below(256));
  m.mem().write_bytes(g({0, 0}, 0x2000), src_img, {0, 0});

  dma::DmaDescriptor d;
  d.src = g({0, 0}, 0x2000);
  d.dst = g({0, 1}, 0x2000);
  d.elem = p.elem;
  d.inner_count = p.inner;
  d.outer_count = p.outer;
  d.src_inner_stride = p.si;
  d.dst_inner_stride = p.di;
  d.src_outer_stride = p.so;
  d.dst_outer_stride = p.dso;
  run_dma({0, 0}, d);

  // Reference walk.
  std::vector<std::byte> expect(8192);
  m.mem().read_bytes(g({0, 1}, 0x2000), expect, {0, 1});  // current state
  Addr s = 0, t = 0;
  for (std::uint32_t o = 0; o < p.outer; ++o) {
    for (std::uint32_t i = 0; i < p.inner; ++i) {
      for (std::uint32_t b = 0; b < esz; ++b) expect[t + b] = src_img[s + b];
      s += static_cast<Addr>(p.si);
      t += static_cast<Addr>(p.di);
    }
    s += static_cast<Addr>(p.so);
    t += static_cast<Addr>(p.dso);
  }
  std::vector<std::byte> got(8192);
  m.mem().read_bytes(g({0, 1}, 0x2000), got, {0, 1});
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), got.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DmaDescSemantics,
    ::testing::Values(
        DescCase{dma::ElemSize::Byte, 64, 1, 1, 1, 0, 0},
        DescCase{dma::ElemSize::HWord, 32, 4, 2, 2, 8, 8},
        DescCase{dma::ElemSize::Word, 16, 8, 4, 4, 64, 32},
        DescCase{dma::ElemSize::Word, 1, 16, 4, 4, 32, 4},      // column gather
        DescCase{dma::ElemSize::DWord, 8, 8, 8, 8, 128, 64},
        DescCase{dma::ElemSize::Word, 16, 4, 8, 4, 0, 0},       // src gap
        DescCase{dma::ElemSize::DWord, 16, 1, 8, 8, 0, 0}));

}  // namespace
