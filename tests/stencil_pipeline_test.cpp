// Tests for the temporal-blocking pipelined stencil (the paper's section-IX
// future work): exactness at every depth, validation, and the
// traffic-vs-redundancy trade.

#include <gtest/gtest.h>

#include "core/stencil_pipeline.hpp"

namespace {

using namespace epi;
using core::StencilPipelineConfig;

StencilPipelineConfig make_cfg(unsigned group, unsigned tile, unsigned depth,
                               unsigned iters) {
  StencilPipelineConfig cfg;
  cfg.group = group;
  cfg.tile_interior = tile;
  cfg.depth = depth;
  cfg.iters = iters;
  return cfg;
}

TEST(StencilPipeline, ValidatesConfiguration) {
  host::System sys;
  // tile_interior not a multiple of group:
  EXPECT_THROW((void)core::run_stencil_pipeline(sys, 60, make_cfg(4, 18, 1, 2), 1, false),
               std::invalid_argument);
  // depth so deep the window has no exact output:
  EXPECT_THROW((void)core::run_stencil_pipeline(sys, 60, make_cfg(2, 10, 6, 2), 1, false),
               std::invalid_argument);
  // grid not a multiple of the output edge:
  EXPECT_THROW((void)core::run_stencil_pipeline(sys, 50, make_cfg(2, 10, 2, 2), 1, false),
               std::invalid_argument);
  // window larger than the grid:
  EXPECT_THROW((void)core::run_stencil_pipeline(sys, 8, make_cfg(4, 40, 1, 2), 1, false),
               std::invalid_argument);
}

struct PipeCase {
  unsigned n, group, tile, depth, iters;
};

class PipelineExactness : public ::testing::TestWithParam<PipeCase> {};

TEST_P(PipelineExactness, BitExactVsReference) {
  const auto p = GetParam();
  host::System sys;
  const auto r = core::run_stencil_pipeline(
      sys, p.n, make_cfg(p.group, p.tile, p.depth, p.iters), 100 + p.n + p.depth, true);
  EXPECT_EQ(r.max_error, 0.0f) << "n=" << p.n << " T=" << p.depth;
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineExactness,
    ::testing::Values(PipeCase{40, 2, 22, 2, 4},     // multi-block, T=2
                      PipeCase{40, 2, 22, 2, 5},     // short final batch
                      PipeCase{48, 2, 16, 1, 3},     // naive streaming (T=1)
                      PipeCase{36, 2, 22, 6, 6},     // deep blocking, S=12
                      PipeCase{36, 3, 24, 4, 8},     // 3x3 workgroup
                      PipeCase{32, 4, 20, 3, 6},     // 4x4 workgroup
                      PipeCase{60, 4, 32, 2, 4},     // S=30, 2x2 blocks
                      PipeCase{24, 2, 24, 1, 4}));   // single block = window

TEST(StencilPipeline, DeeperBlockingMovesLessData) {
  // Same grid and iteration count: T=5 must move far less DRAM traffic
  // than naive T=1 streaming.
  host::System a;
  const auto naive =
      core::run_stencil_pipeline(a, 128, make_cfg(4, 32, 1, 10), 7, false);
  host::System b;
  const auto blocked =
      core::run_stencil_pipeline(b, 128, make_cfg(4, 40, 5, 10), 7, false);
  const auto naive_total = naive.dram_read_bytes + naive.dram_write_bytes;
  const auto blocked_total = blocked.dram_read_bytes + blocked.dram_write_bytes;
  EXPECT_LT(blocked_total, naive_total / 2);
  // And it is faster end-to-end despite the redundant overlap compute.
  EXPECT_LT(blocked.cycles, naive.cycles);
  EXPECT_GT(blocked.useful_gflops, naive.useful_gflops);
}

TEST(StencilPipeline, RedundancyGrowsWithDepth) {
  host::System a;
  const auto shallow =
      core::run_stencil_pipeline(a, 128, make_cfg(4, 32, 1, 4), 7, false);
  host::System b;
  const auto deep = core::run_stencil_pipeline(b, 128, make_cfg(4, 40, 5, 5), 7, false);
  EXPECT_GT(deep.redundancy, shallow.redundancy);
  EXPECT_GE(shallow.redundancy, 1.0);
}

TEST(StencilPipeline, TrafficAccountingIsPlausible) {
  host::System sys;
  const auto r = core::run_stencil_pipeline(sys, 40, make_cfg(2, 22, 2, 4), 7, false);
  // Per batch: every core reads its (tile/g+2)^2 window tile per supertile
  // and writes its output slice; reads exceed writes (overlap).
  EXPECT_GT(r.dram_read_bytes, r.dram_write_bytes);
  // Writes per batch = the whole interior exactly once.
  const std::uint64_t interior_bytes = 40ull * 40ull * 4ull;
  EXPECT_EQ(r.dram_write_bytes, interior_bytes * 2);  // 2 batches
}

TEST(StencilPipeline, NaiveStreamingIsTransferBound) {
  host::System sys;
  const auto r = core::run_stencil_pipeline(sys, 128, make_cfg(4, 32, 1, 6), 7, false);
  // 120x120 floats in+out per iteration at 150 MB/s dwarfs the compute.
  EXPECT_LT(r.useful_gflops, 2.0);
}

}  // namespace
