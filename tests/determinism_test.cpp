// Golden determinism tests: exact cycle counts for small end-to-end runs.
//
// The simulator's contract is bit-for-bit reproducibility: events fire in
// (time, insertion-sequence) order, so the same experiment produces the
// same cycle count on every machine, every run, forever. These tests pin
// small representative scenarios to golden values captured from the seed
// implementation (single global event heap, polling joins, element-wise
// DMA commits). Any engine or model change that shifts an event -- a queue
// reordering, a coalesced commit landing a cycle early, a wake-up lost or
// duplicated -- shows up here as a hard failure, not as a silent drift in
// the paper-facing tables.
//
// If one of these values ever changes *intentionally* (a deliberate timing
// model change), re-run the affected scenario and update the golden -- and
// expect every EXPERIMENTS.md table to need regeneration too.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/matmul.hpp"
#include "core/microbench.hpp"
#include "core/stencil.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "host/system.hpp"
#include "sched/cluster.hpp"
#include "shmem/shmem.hpp"
#include "shmem/workloads.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace {

using namespace epi;

// FNV-1a over the engine's firing order: (now, id) per resume. Any change
// in event order -- including ties broken differently -- changes the hash.
std::uint64_t order_hash(const std::vector<std::pair<sim::Cycles, int>>& log) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [t, id] : log) {
    for (std::uint64_t v : {static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(id)}) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

// Mixed near/far delays crossing the engine's near-future window boundary
// in both directions, plus same-cycle ties. Pins the (time, seq) drain
// order of the full queue, not just the common short-delay path.
TEST(GoldenDeterminism, EventOrderAcrossQueueTiers) {
  sim::Engine e;
  std::vector<std::pair<sim::Cycles, int>> log;
  static constexpr sim::Cycles kDelays[] = {3, 1, 4096, 7, 5000, 3, 0, 4095, 12000, 7};
  for (int i = 0; i < 40; ++i) {
    sim::spawn(e, [](sim::Engine& eng, std::vector<std::pair<sim::Cycles, int>>& l,
                     int id) -> sim::Op<void> {
      for (int k = 0; k < 10; ++k) {
        co_await sim::delay(eng, kDelays[(id + k) % 10]);
        l.emplace_back(eng.now(), id);
      }
    }(e, log, i));
  }
  e.run();
  EXPECT_EQ(log.size(), 400u);
  EXPECT_EQ(order_hash(log), 13207175386689502891ull);
  EXPECT_EQ(e.events_processed(), 400u);
  EXPECT_EQ(e.now(), 25212u);
}

// 2x2-core 8x8-per-core stencil, 5 iterations: full halo-exchange protocol
// (flag spins, posted stores, barriers) over the on-chip mesh.
TEST(GoldenDeterminism, SmallStencilCycles) {
  host::System sys;
  core::StencilConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.iters = 5;
  const auto ex = core::run_stencil_experiment(sys, 2, 2, cfg, 1, true);
  EXPECT_TRUE(ex.verified);
  EXPECT_EQ(ex.result.cycles, 7155u);
}

// 2x2-core Cannon matmul with 8x8 blocks: DMA block rotation + barriers.
TEST(GoldenDeterminism, OnChipMatmulCycles) {
  host::System sys;
  const auto r = core::run_matmul_onchip(sys, 2, 8, core::Codegen::TunedAsm, 1, true);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.cycles, 2781u);
}

// 2x2 cores saturating the eLink with 2 KB external writes for 1 ms of
// simulated time: cascaded weighted arbitration under contention. The
// position-dependent per-node iteration counts are the paper's Table II
// signature and are exquisitely sensitive to grant order.
TEST(GoldenDeterminism, ElinkContentionIterations) {
  host::System sys;
  const auto res = core::measure_elink_contention(sys, 2, 2, 2048, 0.001);
  ASSERT_EQ(res.nodes.size(), 4u);
  std::vector<std::uint64_t> iters;
  for (const auto& n : res.nodes) iters.push_back(n.iterations);
  EXPECT_EQ(iters, (std::vector<std::uint64_t>{37, 18, 12, 6}));
}

// epi-shmem end to end: a 2x2 Cannon matmul over put_with_signal rotation
// plus barriers, replayed from the same seed in a fresh System. The replay
// must be byte-identical (FNV-1a over every PE's C block) and land on the
// same cycle -- the flag-generation protocols, the chained signal
// descriptors, and the dissemination barrier all drain through the one
// event queue, so any nondeterminism shows up as a hash or cycle drift.
TEST(GoldenDeterminism, ShmemCannonSameSeedReplay) {
  auto run_once = [](std::uint64_t& out_hash) -> sim::Cycles {
    host::System sys;
    auto wg = sys.open(0, 0, 2, 2);
    auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
    const auto plan = shmem::plan_cannon(group->heap(), wg.info(), 8, 2);
    shmem::fill_cannon_inputs(sys.machine(), wg.info(), plan, 2026);
    wg.load([group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
      return shmem::cannon_kernel(ctx, group, plan);
    });
    wg.run();
    EXPECT_EQ(shmem::verify_cannon_output(sys.machine(), wg.info(), plan, 2026),
              "");
    std::uint64_t h = 1469598103934665603ull;
    const auto& map = sys.machine().mem().map();
    for (unsigned pe = 0; pe < group->n_pes(); ++pe) {
      for (std::uint32_t off = 0; off < plan.block * plan.block * 4; off += 4) {
        std::uint32_t w = 0;
        sys.read(map.global(group->coord_of(pe), plan.c + off),
                 std::as_writable_bytes(std::span<std::uint32_t, 1>(&w, 1)));
        for (int b = 0; b < 4; ++b) {
          h ^= (w >> (8 * b)) & 0xff;
          h *= 1099511628211ull;
        }
      }
    }
    out_hash = h;
    return sys.machine().engine().now();
  };
  std::uint64_t h1 = 0, h2 = 0;
  const sim::Cycles c1 = run_once(h1);
  const sim::Cycles c2 = run_once(h2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(h1, 6834394640293651171ull);
  EXPECT_EQ(c1, 9964u);
}

// The fault injector's contract is that it is *passive*: arming an empty
// plan hooks every layer (core timed ops, mesh routing, both eLinks, DMA,
// memory writes) yet must not move a single event. The same goldens as
// above, byte-for-byte, with the hooks installed.

TEST(GoldenDeterminism, SmallStencilCyclesWithEmptyFaultPlan) {
  host::System sys;
  sys.machine().enable_faults(fault::FaultPlan{});
  core::StencilConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.iters = 5;
  const auto ex = core::run_stencil_experiment(sys, 2, 2, cfg, 1, true);
  EXPECT_TRUE(ex.verified);
  EXPECT_EQ(ex.result.cycles, 7155u);
}

TEST(GoldenDeterminism, OnChipMatmulCyclesWithEmptyFaultPlan) {
  host::System sys;
  sys.machine().enable_faults(fault::FaultPlan{});
  const auto r = core::run_matmul_onchip(sys, 2, 8, core::Codegen::TunedAsm, 1, true);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.cycles, 2781u);
}

TEST(GoldenDeterminism, ElinkContentionIterationsWithEmptyFaultPlan) {
  host::System sys;
  sys.machine().enable_faults(fault::FaultPlan{});
  const auto res = core::measure_elink_contention(sys, 2, 2, 2048, 0.001);
  ASSERT_EQ(res.nodes.size(), 4u);
  std::vector<std::uint64_t> iters;
  for (const auto& n : res.nodes) iters.push_back(n.iterations);
  EXPECT_EQ(iters, (std::vector<std::uint64_t>{37, 18, 12, 6}));
}

// ---- parallel (PDES) cluster serving ---------------------------------------
//
// The tentpole contract of --parallel=N: the cluster report, every chip's
// decision log, and the cross-chip notice logs are byte-identical for every
// worker count. Each scenario below runs with N in {1, 2, 4}, compares the
// full byte stream against the N=1 reference, and pins its FNV-1a hash so
// any drift in the window schedule or merge order fails loudly here.

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Everything observable from a cluster run, concatenated: report bytes,
// per-chip decision logs, per-chip fault logs, per-chip notice logs.
std::string cluster_bytes(const sched::ClusterConfig& cfg, unsigned workers) {
  sched::ClusterScheduler cs(cfg);
  cs.run(workers);
  std::string all = cs.report();
  for (unsigned c = 0; c < cs.stats().chips; ++c) {
    for (const auto& line : cs.chip_sched(c).event_log()) all += line + "\n";
    for (const auto& r : cs.chip_sched(c).fault_log()) {
      all += fault::to_line(r) + "\n";
    }
    for (const auto& line : cs.notices(c)) all += line + "\n";
  }
  return all;
}

void expect_parallel_invariant(const sched::ClusterConfig& cfg,
                               std::uint64_t golden) {
  const std::string ref = cluster_bytes(cfg, 1);
  EXPECT_EQ(cluster_bytes(cfg, 2), ref);
  EXPECT_EQ(cluster_bytes(cfg, 4), ref);
  EXPECT_EQ(fnv1a(ref), golden);
}

sched::ClusterConfig small_cluster() {
  sched::ClusterConfig cfg;
  cfg.chip_rows = 2;
  cfg.chip_cols = 2;
  cfg.traffic.jobs = 6;
  cfg.traffic.seed = 7;
  cfg.traffic.mean_interarrival = 50'000;
  cfg.remote_frac = 0.3;
  return cfg;
}

// Mixed serving traffic (matmul/stencil/offload/shmem kinds), clean chips.
TEST(GoldenDeterminism, ClusterServeParallelInvariance) {
  expect_parallel_invariant(small_cluster(), 10252299936465896053ull);
}

// Comm-bound epi-shmem traffic only (cannon + transpose): the PGAS flag
// protocols and chained signal DMA all inside parallel windows.
TEST(GoldenDeterminism, ClusterShmemMixParallelInvariance) {
  sched::ClusterConfig cfg = small_cluster();
  cfg.traffic.matmul_weight = 0;
  cfg.traffic.stencil_weight = 0;
  cfg.traffic.offload_weight = 0;
  cfg.traffic.cannon_weight = 2;
  cfg.traffic.transpose_weight = 2;
  cfg.traffic.seed = 9;
  expect_parallel_invariant(cfg, 13678313535663572526ull);
}

// Per-chip chaos plans with the watchdog armed: stalls, link outages and
// write corruption become FaultReports and re-executions, and that whole
// recovery story must still be worker-count-invariant.
TEST(GoldenDeterminism, ClusterServeWithFaultsParallelInvariance) {
  sched::ClusterConfig cfg = small_cluster();
  cfg.sched.watchdog_cycles = 400'000;
  for (unsigned c = 0; c < 4; ++c) {
    fault::ChaosConfig chaos;
    chaos.seed = 100 + c;
    chaos.core_stalls = 1;
    chaos.link_faults = 1;
    chaos.mem_flips = 1;
    cfg.fault_plans.push_back(fault::generate(chaos));
  }
  expect_parallel_invariant(cfg, 74659777904851189ull);
}

// Pipelined (job-graph) traffic: multi-stage requests with per-graph routing,
// co-placement, tensor handoffs over both transports, and stage overlap --
// the whole epi-dag story must be worker-count-invariant too.
TEST(GoldenDeterminism, ClusterPipelineParallelInvariance) {
  sched::ClusterConfig cfg = small_cluster();
  cfg.traffic.jobs = 10;
  cfg.traffic.seed = 13;
  cfg.traffic.pipeline_frac = 0.5;
  expect_parallel_invariant(cfg, 2654938591465841575ull);
}

// Arming empty per-chip plans hooks every layer but must not move a single
// event: identical bytes to the no-plan run, for every worker count.
TEST(GoldenDeterminism, ClusterServeEmptyFaultPlansAreFree) {
  const std::string ref = cluster_bytes(small_cluster(), 1);
  sched::ClusterConfig armed = small_cluster();
  armed.fault_plans.assign(4, fault::FaultPlan{});
  EXPECT_EQ(cluster_bytes(armed, 1), ref);
  EXPECT_EQ(cluster_bytes(armed, 2), ref);
  EXPECT_EQ(cluster_bytes(armed, 4), ref);
}

// Same guarantee for the cluster-scoped plan path: a `chips 2x2` plan with
// no events constructs the ClusterInjector but must not arm failover or
// move a single event.
TEST(GoldenDeterminism, ClusterServeEmptyClusterPlanIsFree) {
  const std::string ref = cluster_bytes(small_cluster(), 1);
  sched::ClusterConfig armed = small_cluster();
  std::istringstream plan("seed 1\nchips 2x2\n");
  armed.cluster_plan = fault::parse(plan, "empty");
  EXPECT_EQ(cluster_bytes(armed, 1), ref);
  EXPECT_EQ(cluster_bytes(armed, 2), ref);
  EXPECT_EQ(cluster_bytes(armed, 4), ref);
}

// The failover tentpole: a chip crash mid-run plus a host stall, a flapping
// bridge link, and dropped/corrupted completion notices. Heartbeat
// watchdogs, quarantine, and re-forwarding all fire, and the complete
// recovery transcript (report with health footer, recovery decisions,
// cluster fault lines, per-chip decision/fault/notice logs) must be
// byte-identical for every worker count.
TEST(GoldenDeterminism, ClusterChipCrashFailoverParallelInvariance) {
  sched::ClusterConfig cfg = small_cluster();
  cfg.traffic.jobs = 10;
  cfg.traffic.pipeline_frac = 0.4;  // wedge-prone multi-stage graphs
  cfg.remote_frac = 0.4;
  std::istringstream plan(
      "seed 3\n"
      "chips 2x2\n"
      "chip-crash chip=0,1 at=400000\n"
      "chip-stall chip=1,0 at=200000 for=250000\n"
      "xmesh from=0,0 to=1,1 at=100000 for=120000 flap=2 period=400000\n"
      "notice-drop chip=1,0 at=0 for=0 count=1\n"
      "notice-flip chip=1,1 at=0 for=0 count=1\n");
  cfg.cluster_plan = fault::parse(plan, "crash");

  // Failover semantics first: the run terminates (no wedged graphs), the
  // dead chip is marked, orphans were re-homed, and every record carries a
  // terminal verdict.
  sched::ClusterScheduler cs(cfg);
  cs.run(4);
  EXPECT_TRUE(cs.failover_armed());
  EXPECT_EQ(cs.stats().dead_chips, 1u);
  EXPECT_GT(cs.stats().reforwarded, 0u);
  EXPECT_EQ(cs.partition().health_of(1), machine::ChipHealth::Dead);
  unsigned completed_elsewhere = 0;
  for (unsigned c = 0; c < cs.stats().chips; ++c) {
    for (const auto& rec : cs.chip_sched(c).records()) {
      EXPECT_NE(rec.verdict, sched::Verdict::Pending);
      // Re-homed work completing on a healthy chip: a completed record on a
      // live chip whose spec originated elsewhere.
      if (c != 1 && rec.verdict == sched::Verdict::Completed &&
          rec.spec.origin_chip != c) {
        ++completed_elsewhere;
      }
    }
  }
  EXPECT_GT(completed_elsewhere, 0u);

  expect_parallel_invariant(cfg, 12557027773043665117ull);
}

}  // namespace
