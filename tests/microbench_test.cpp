// Tests for the section-V micro-benchmarks: bandwidth/latency shapes
// (Figures 2-3, Table I) and eLink contention (Tables II-III).

#include <gtest/gtest.h>

#include "core/microbench.hpp"

namespace {

using namespace epi;
using core::measure_direct_write;
using core::measure_dma;
using core::measure_elink_contention;

TEST(Microbench, DirectWriteBandwidthFlatWithSize) {
  // CPU direct writes cost ~6.67 cycles/word regardless of message size:
  // bandwidth is flat around 360 MB/s.
  host::System sys;
  auto small = measure_direct_write(sys, {0, 0}, {0, 1}, 128, 50);
  host::System sys2;
  auto large = measure_direct_write(sys2, {0, 0}, {0, 1}, 4096, 50);
  EXPECT_NEAR(small.mb_per_s, 350.0, 60.0);
  EXPECT_NEAR(large.mb_per_s, 360.0, 30.0);
}

TEST(Microbench, DmaBeatsDirectForLargeMessages) {
  // Figure 2: DMA reaches ~2 GB/s for large messages, far above direct
  // writes.
  host::System a, b;
  auto dma = measure_dma(a, {0, 0}, {0, 1}, 8192, 20);
  auto direct = measure_direct_write(b, {0, 0}, {0, 1}, 8192, 20);
  EXPECT_GT(dma.mb_per_s, 1500.0);
  EXPECT_LT(dma.mb_per_s, 2400.0);
  EXPECT_GT(dma.mb_per_s, 4.0 * direct.mb_per_s);
}

TEST(Microbench, DirectBeatsDmaForSmallMessages) {
  // Figure 3: below the ~500-byte crossover, direct writes win.
  host::System a, b;
  auto dma = measure_dma(a, {0, 0}, {0, 1}, 64, 50);
  auto direct = measure_direct_write(b, {0, 0}, {0, 1}, 64, 50);
  EXPECT_LT(direct.us_per_msg, dma.us_per_msg);
}

TEST(Microbench, CrossoverBetween128And1024Bytes) {
  // The paper puts the crossover "about 500 bytes"; our calibration must
  // land in the same decade.
  bool crossed = false;
  std::uint32_t crossover = 0;
  for (std::uint32_t bytes = 64; bytes <= 2048; bytes *= 2) {
    host::System a, b;
    auto dma = measure_dma(a, {0, 0}, {0, 1}, bytes, 20);
    auto direct = measure_direct_write(b, {0, 0}, {0, 1}, bytes, 20);
    if (!crossed && dma.us_per_msg <= direct.us_per_msg) {
      crossed = true;
      crossover = bytes;
    }
  }
  ASSERT_TRUE(crossed);
  EXPECT_GE(crossover, 128u);
  EXPECT_LE(crossover, 1024u);
}

TEST(Microbench, TableOneDistanceLatency) {
  // 80-byte messages from (0,0): per-word time grows from ~11.1 ns at
  // distance 1 to ~12.6 ns at distance 14 -- a small effect.
  struct Row {
    arch::CoreCoord dst;
    double ns;
  };
  const Row rows[] = {{{0, 1}, 11.12}, {{1, 1}, 11.14}, {{3, 3}, 11.62},
                      {{4, 4}, 11.86}, {{7, 7}, 12.57}};
  for (const auto& r : rows) {
    host::System sys;
    auto m = measure_direct_write(sys, {0, 0}, r.dst, 80, 200);
    // Subtract the per-message flag store before dividing by 20 words.
    const double flag_cycles = static_cast<double>(sys.timing().remote_store_issue_cycles);
    const double cycles_per_msg = static_cast<double>(m.cycles) / 200.0 - flag_cycles;
    const double ns_per_word = cycles_per_msg / 20.0 / sys.timing().clock_hz * 1e9;
    EXPECT_NEAR(ns_per_word, r.ns, 0.25) << epi::arch::to_string(r.dst);
  }
}

TEST(Microbench, ElinkFourWriters) {
  // Table II shape: 2x2 writers; unequal shares; total ~ the sustained cap.
  host::System sys;
  auto res = measure_elink_contention(sys, 2, 2, 2048, 0.02);
  ASSERT_EQ(res.nodes.size(), 4u);
  double total = 0.0;
  for (const auto& n : res.nodes) total += n.utilization;
  EXPECT_GT(total, 0.90);
  EXPECT_LE(total, 1.05);
  // Every writer makes progress in the 4-node case (as in Table II).
  for (const auto& n : res.nodes) EXPECT_GT(n.iterations, 0u);
  // Table II ordering: (0,0) > (0,1) > (1,0) > (1,1).
  EXPECT_GT(res.nodes[0].iterations, res.nodes[1].iterations);
  EXPECT_GT(res.nodes[1].iterations, res.nodes[2].iterations);
  EXPECT_GT(res.nodes[2].iterations, res.nodes[3].iterations);
  // Shares are unequal: max at least 2x min.
  std::uint64_t mn = ~0ull, mx = 0;
  for (const auto& n : res.nodes) {
    mn = std::min(mn, n.iterations);
    mx = std::max(mx, n.iterations);
  }
  EXPECT_GE(mx, 2 * mn);
}

TEST(Microbench, ElinkSixtyFourWritersStarvation) {
  // Table III shape: with 64 writers many far nodes get (almost) nothing
  // while the total stays at the cap.
  host::System sys;
  auto res = measure_elink_contention(sys, 8, 8, 2048, 0.02);
  ASSERT_EQ(res.nodes.size(), 64u);
  double total = 0.0;
  unsigned starved = 0;
  for (const auto& n : res.nodes) {
    total += n.utilization;
    if (n.iterations <= 1) ++starved;
  }
  EXPECT_GT(total, 0.90);
  EXPECT_LE(total, 1.05);
  EXPECT_GE(starved, 16u);  // paper: 24 nodes at zero, more below 10 blocks
  EXPECT_NEAR(res.total_mb_per_s, 150.0, 10.0);
}

TEST(Microbench, ElinkWindowScalesIterations) {
  host::System a, b;
  auto short_win = measure_elink_contention(a, 1, 1, 2048, 0.005);
  auto long_win = measure_elink_contention(b, 1, 1, 2048, 0.02);
  EXPECT_NEAR(static_cast<double>(long_win.nodes[0].iterations),
              4.0 * static_cast<double>(short_win.nodes[0].iterations),
              0.15 * static_cast<double>(long_win.nodes[0].iterations));
}

TEST(Microbench, RelayRingVisitsEveryNode) {
  // The faithful Listing-1 benchmark: the message relays through every
  // mesh node; per-transfer time matches the pairwise direct-write model.
  host::System sys;
  const auto ring = core::measure_relay_ring(sys, 4, 4, 80, 10);
  // 80-byte adjacent transfer: ~20 words * 6.67 cycles + flag + wakeup.
  const double cycles_per_msg =
      static_cast<double>(ring.cycles) / (10.0 * 16.0);
  EXPECT_GT(cycles_per_msg, 20 * 6.67);
  EXPECT_LT(cycles_per_msg, 20 * 6.67 + 30);
}

TEST(Microbench, RelayRingScalesWithLoops) {
  host::System a, b;
  const auto one = core::measure_relay_ring(a, 2, 2, 256, 5);
  const auto two = core::measure_relay_ring(b, 2, 2, 256, 10);
  EXPECT_NEAR(static_cast<double>(two.cycles),
              2.0 * static_cast<double>(one.cycles),
              0.05 * static_cast<double>(two.cycles));
}

TEST(Microbench, RelayRingDataArrivesIntact) {
  // The ring is a functional relay: after N loops the payload seeded in
  // node 0 has propagated through everyone.
  host::System sys;
  (void)core::measure_relay_ring(sys, 2, 4, 64, 3);
  SUCCEED();  // deadlock-free completion is the property under test
}

TEST(Microbench, OversizedMessageRejected) {
  host::System sys;
  EXPECT_THROW((void)measure_direct_write(sys, {0, 0}, {0, 1}, 16384, 1),
               std::invalid_argument);
  EXPECT_THROW((void)measure_dma(sys, {0, 0}, {0, 1}, 16384, 1), std::invalid_argument);
}

}  // namespace
