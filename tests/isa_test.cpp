// Tests for the eCore ISA subset: assembler syntax, functional semantics,
// and the dual-issue / hazard timing model.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

namespace {

using namespace epi::isa;

struct Run {
  RegFile regs;
  std::vector<std::byte> mem;
  ExecStats st;
};

Run run(const std::string& text, std::size_t mem_bytes = 4096,
        const InterpreterConfig& cfg = {}) {
  Run r;
  r.mem.resize(mem_bytes);
  const Program p = assemble(text);
  r.st = execute(p, r.regs, r.mem, cfg);
  return r;
}

// ---- assembler ---------------------------------------------------------------

TEST(Assembler, ParsesRepresentativeProgram) {
  const Program p = assemble(R"(
    ; comment-only line
    mov r7, #3
  loop:
    sub r7, r7, #1
    bne loop
    halt
  )");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.code[0].op, Opcode::MovImm);
  EXPECT_EQ(p.code[2].op, Opcode::Bne);
  EXPECT_EQ(p.code[2].imm, 1);  // resolved label
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_THROW((void)assemble("frobnicate r1, r2"), AssemblyError);
  EXPECT_THROW((void)assemble("mov r64, #1\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble("bne nowhere\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble("ldrd r3, [r0, #0]\nhalt"), AssemblyError);  // odd pair
  EXPECT_THROW((void)assemble("x: halt\nx: halt"), AssemblyError);         // dup label
  EXPECT_THROW((void)assemble("ldr r1, [r0, #zz]\nhalt"), AssemblyError);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const Program p = assemble("mov r1, #0x10\nmov r2, #-5\nhalt");
  EXPECT_EQ(p.code[0].imm, 16);
  EXPECT_EQ(p.code[1].imm, -5);
}

/// Errors carry the 1-based source line of the offending statement, which
/// downstream diagnostics (epi_lint) surface as file:line.
unsigned error_line(const char* text) {
  try {
    (void)assemble(text);
  } catch (const AssemblyError& e) {
    return e.line;
  }
  return 0;  // no throw: the caller's EXPECT will flag it
}

TEST(Assembler, OddDoublewordPairReportsItsLine) {
  EXPECT_EQ(error_line("mov r0, #0\n"
                       "ldrd r3, [r0, #0]\n"
                       "halt\n"),
            2u);
  EXPECT_EQ(error_line("mov r0, #0\n"
                       "mov r1, #0\n"
                       "strd r5, [r0], #8\n"
                       "halt\n"),
            3u);
}

TEST(Assembler, RegisterBeyondFileReportsItsLine) {
  EXPECT_EQ(error_line("mov r64, #1\nhalt\n"), 1u);
  EXPECT_EQ(error_line("halt\nmov r100, #1\n"), 2u);
  EXPECT_EQ(error_line("\n; comment\nfadd r1, r2, r99\nhalt\n"), 3u);
}

TEST(Assembler, UndefinedLabelReportsTheBranchLine) {
  EXPECT_EQ(error_line("mov r0, #0\n"
                       "beq nowhere\n"
                       "halt\n"),
            2u);
}

TEST(Assembler, ProgramRecordsSourceLines) {
  const Program p = assemble(
      "; leading comment\n"
      "mov r7, #2\n"
      "\n"
      "loop:\n"
      "sub r7, r7, #1\n"
      "bne loop\n"
      "halt\n");
  ASSERT_EQ(p.size(), 4u);
  ASSERT_EQ(p.lines.size(), 4u);
  EXPECT_EQ(p.line_of(0), 2u);
  EXPECT_EQ(p.line_of(1), 5u);
  EXPECT_EQ(p.line_of(2), 6u);
  EXPECT_EQ(p.line_of(3), 7u);
  EXPECT_EQ(p.line_of(99), 0u);  // out of range: untracked
}

// ---- functional semantics -----------------------------------------------------

TEST(Interpreter, IntegerArithmeticAndFlags) {
  auto r = run(R"(
    mov r1, #10
    add r2, r1, #5
    sub r3, r2, r1
    halt
  )");
  EXPECT_EQ(r.regs.i(2), 15);
  EXPECT_EQ(r.regs.i(3), 5);
}

TEST(Interpreter, FpuOps) {
  auto r = run(R"(
    mov r1, #0x40400000   ; 3.0f
    mov r2, #0x40000000   ; 2.0f
    mov r3, #0
    fmadd r3, r1, r2      ; 0 + 3*2
    fmul r4, r1, r2
    fadd r5, r1, r2
    fsub r6, r1, r2
    halt
  )");
  EXPECT_EQ(r.regs.f(3), 6.0f);
  EXPECT_EQ(r.regs.f(4), 6.0f);
  EXPECT_EQ(r.regs.f(5), 5.0f);
  EXPECT_EQ(r.regs.f(6), 1.0f);
}

TEST(Interpreter, LoadsStoresAndPostmodify) {
  auto r = run(R"(
    mov r1, #0x11223344
    mov r0, #16
    str r1, [r0], #4
    str r1, [r0, #0]
    mov r2, #16
    ldr r3, [r2], #4
    ldr r4, [r2, #0]
    ldrd r6, [r2, #-4]
    halt
  )");
  // r0: 16 -> 20 after one postmodify store; the second used offset 0.
  EXPECT_EQ(r.regs.i(0), 20);
  EXPECT_EQ(r.regs.raw(3), 0x11223344u);
  EXPECT_EQ(r.regs.raw(4), 0x11223344u);
  EXPECT_EQ(r.regs.raw(6), 0x11223344u);
  EXPECT_EQ(r.regs.raw(7), 0x11223344u);
  EXPECT_EQ(r.regs.i(2), 20);
}

TEST(Interpreter, LoopExecutesCorrectCount) {
  auto r = run(R"(
    mov r1, #0
    mov r7, #10
  loop:
    add r1, r1, #3
    sub r7, r7, #1
    bne loop
    halt
  )");
  EXPECT_EQ(r.regs.i(1), 30);
}

TEST(Interpreter, MemoryBoundsChecked) {
  EXPECT_THROW(run("mov r0, #5000\nldr r1, [r0, #0]\nhalt", 4096), ExecutionError);
  EXPECT_THROW(run("mov r0, #4094\nstr r1, [r0, #0]\nhalt", 4096), ExecutionError);
}

TEST(Interpreter, MissingHaltDetected) {
  EXPECT_THROW(run("mov r1, #1"), ExecutionError);
}

TEST(Interpreter, InfiniteLoopGuard) {
  InterpreterConfig cfg;
  cfg.max_instructions = 1000;
  EXPECT_THROW(run("x: b x\nhalt", 64, cfg), ExecutionError);
}

// ---- timing model -------------------------------------------------------------

TEST(Timing, FpuAndIaluDualIssue) {
  // 4 FMADDs to distinct registers interleaved with 4 MOVs: pairs issue
  // together, 4 cycles total.
  auto r = run(R"(
    fmadd r32, r1, r2
    mov r10, #1
    fmadd r33, r1, r2
    mov r11, #1
    fmadd r34, r1, r2
    mov r12, #1
    fmadd r35, r1, r2
    mov r13, #1
    halt
  )");
  EXPECT_EQ(r.st.cycles, 4u);
  EXPECT_EQ(r.st.instructions, 8u);
}

TEST(Timing, BackToBackFmaddsOnDistinctRegsPipeline) {
  auto r = run(R"(
    fmadd r32, r1, r2
    fmadd r33, r1, r2
    fmadd r34, r1, r2
    fmadd r35, r1, r2
    fmadd r36, r1, r2
    halt
  )");
  EXPECT_EQ(r.st.cycles, 5u);  // one per cycle
  EXPECT_EQ(r.st.flops, 10u);
}

TEST(Timing, AccumulatorReuseStallsFiveCycles) {
  // The paper's measured hazard: an FMADD accumulator cannot be an FPU
  // source/result again for 5 cycles.
  auto r = run(R"(
    fmadd r32, r1, r2
    fmadd r32, r1, r2
    halt
  )");
  EXPECT_EQ(r.st.cycles, 6u);  // issue 0, then issue 5
  EXPECT_EQ(r.st.hazard_stalls, 4u);
}

TEST(Timing, FiveAccumulatorRotationAvoidsTheStall) {
  // The paper's remedy: rotate five accumulators so each is touched every
  // 5 cycles -- exactly at the hazard boundary, no stall.
  std::string text;
  for (int rep = 0; rep < 4; ++rep) {
    for (int k = 0; k < 5; ++k) {
      text += "fmadd r" + std::to_string(32 + k) + ", r1, r2\n";
    }
  }
  text += "halt\n";
  auto r = run(text);
  EXPECT_EQ(r.st.cycles, 20u);
  EXPECT_EQ(r.st.hazard_stalls, 0u);
}

TEST(Timing, StoreOfFreshAccumulatorWaits) {
  auto r = run(R"(
    mov r0, #64
    fmadd r32, r1, r2
    str r32, [r0, #0]
    halt
  )");
  // mov@0, fmadd@0 (pair), str waits until fmadd+5.
  EXPECT_EQ(r.st.cycles, 6u);
}

TEST(Timing, TakenBranchCostsThreeCycles) {
  auto no_loop = run(R"(
    mov r1, #1
    mov r2, #1
    mov r3, #1
    mov r4, #1
    halt
  )");
  EXPECT_EQ(no_loop.st.cycles, 4u);  // IALU ops serialise on one slot
  auto with_branch = run(R"(
    mov r7, #2
  loop:
    mov r1, #1
    sub r7, r7, #1
    bne loop
    halt
  )");
  // Setup mov + two iterations of 3 IALU cycles + one taken-branch penalty.
  EXPECT_EQ(with_branch.st.cycles, 1u + 3u + 3u + 3u);
  EXPECT_EQ(with_branch.st.branch_stalls, 3u);
}

TEST(Timing, LoadUseIsBackToBack) {
  auto r = run(R"(
    mov r0, #0
    ldr r1, [r0, #0]
    add r2, r1, #1
    halt
  )");
  // mov@0, ldr@1, result ready @2, add@2.
  EXPECT_EQ(r.st.cycles, 3u);
}

TEST(Timing, LoadFeedingFmaddReadyNextCycle) {
  auto r = run(R"(
    mov r0, #0
    ldr r1, [r0, #0]
    fmadd r32, r1, r2
    halt
  )");
  EXPECT_EQ(r.st.cycles, 3u);  // fmadd pairs one cycle after the load
}

// ---- workgroup opcodes (COREID / LSL / WAIT / BAR / TESTSET) ----------------

TEST(Sync, CoreIdAndLslComposeAGlobalAddress) {
  InterpreterConfig cfg;
  cfg.core_id = 0x808;  // mesh (0,0) on the E64G401
  auto r = run(R"(
    coreid r0
    lsl r1, r0, #20
    halt
  )", 4096, cfg);
  EXPECT_EQ(r.regs.raw(0), 0x808u);
  EXPECT_EQ(r.regs.raw(1), 0x80800000u);
}

TEST(Sync, WaitProceedsWhenConditionAlreadyHolds) {
  auto r = run(R"(
    mov r0, #8
    mov r1, #1
    str r1, [r0, #0]
    wait r0, #1
    halt
  )");
  EXPECT_EQ(r.st.cycles, 4u);  // mov@0, mov@1, str@2, wait@3, halt@4
}

TEST(Sync, UnsatisfiedWaitThrowsWithoutSoloSync) {
  EXPECT_THROW((void)run("mov r0, #8\nwait r0, #1\nhalt"), ExecutionError);
  InterpreterConfig solo;
  solo.solo_sync = true;
  auto r = run("mov r0, #8\nwait r0, #1\nhalt", 4096, solo);
  EXPECT_EQ(r.st.instructions, 2u);  // proceeds in solo mode
}

TEST(Sync, BarIsSoloOnlyUnderSoloSync) {
  EXPECT_THROW((void)run("bar\nhalt"), ExecutionError);
  InterpreterConfig solo;
  solo.solo_sync = true;
  EXPECT_NO_THROW((void)run("bar\nhalt", 4096, solo));
}

TEST(Sync, TestsetAcquiresOnceThenReturnsOld) {
  auto r = run(R"(
    mov r0, #16
    testset r1, [r0, #0]
    testset r2, [r0, #0]
    halt
  )");
  EXPECT_EQ(r.regs.raw(1), 0u);  // acquired: old value was 0, Z set
  EXPECT_EQ(r.regs.raw(2), 1u);  // second acquire sees the lock held
  std::uint32_t word;
  std::memcpy(&word, r.mem.data() + 16, 4);
  EXPECT_EQ(word, 1u);
}

TEST(Sync, TestsetSpinLoopTerminatesViaZFlag) {
  auto r = run(R"(
    mov r0, #16
  lock:
    testset r1, [r0, #0]
    bne lock
    halt
  )");
  EXPECT_EQ(r.st.instructions, 3u);  // acquires first try: Z set, no spin
}

TEST(Sync, SoloSyncToleratesOutOfImageAccess) {
  InterpreterConfig solo;
  solo.solo_sync = true;
  // A store past the 64-byte image is dropped; the load reads back 0.
  auto r = run(R"(
    mov r0, #0x4000
    mov r1, #7
    str r1, [r0, #0]
    ldr r2, [r0, #0]
    halt
  )", 64, solo);
  EXPECT_EQ(r.regs.raw(2), 0u);
  // The same round trip inside the image still works normally.
  auto in = run(R"(
    mov r0, #16
    mov r1, #7
    str r1, [r0, #0]
    ldr r2, [r0, #0]
    halt
  )", 64, solo);
  EXPECT_EQ(in.regs.raw(2), 7u);
}

TEST(Assembler, DmaDirectiveParsesNinePositionalFields) {
  const Program p = assemble(R"(
    .dma 0x1000 0x80904000 4 16 4 4 2 64 64
    halt
  )");
  ASSERT_EQ(p.dma.size(), 1u);
  const DmaDecl& d = p.dma[0];
  EXPECT_EQ(d.src, 0x1000u);
  EXPECT_EQ(d.dst, 0x80904000u);
  EXPECT_EQ(d.elem, 4u);
  EXPECT_EQ(d.inner_count, 16u);
  EXPECT_EQ(d.src_inner_stride, 4);
  EXPECT_EQ(d.dst_inner_stride, 4);
  EXPECT_EQ(d.outer_count, 2u);
  EXPECT_EQ(d.src_outer_stride, 64);
  EXPECT_EQ(d.dst_outer_stride, 64);
  EXPECT_EQ(d.line, 2u);
}

TEST(Assembler, DmaDirectiveRejectsWrongArity) {
  EXPECT_THROW((void)assemble(".dma 0 0 4 1\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble(".dma 0 0 4 1 0 0 1 0 0 9\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble(".dma 0 zz 4 1 0 0 1 0 0\nhalt"), AssemblyError);
}

TEST(Assembler, SyncOpcodeArityIsChecked) {
  EXPECT_THROW((void)assemble("coreid\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble("lsl r1, r0\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble("lsl r1, r0, #32\nhalt"), AssemblyError);  // shift > 31
  EXPECT_THROW((void)assemble("wait r0\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble("bar r0\nhalt"), AssemblyError);
  EXPECT_THROW((void)assemble("testset r1, [r0], #4\nhalt"), AssemblyError);  // postmod
}

}  // namespace
