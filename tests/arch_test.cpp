// Unit tests for coordinates, the global address map, and timing parameters.

#include <gtest/gtest.h>

#include "arch/address_map.hpp"
#include "arch/coords.hpp"
#include "arch/timing.hpp"

namespace {

using namespace epi::arch;

TEST(Coords, ManhattanDistance) {
  EXPECT_EQ(manhattan_distance({0, 0}, {0, 0}), 0u);
  EXPECT_EQ(manhattan_distance({0, 0}, {0, 1}), 1u);
  EXPECT_EQ(manhattan_distance({0, 0}, {1, 1}), 2u);
  EXPECT_EQ(manhattan_distance({7, 7}, {0, 0}), 14u);
  EXPECT_EQ(manhattan_distance({3, 1}, {1, 4}), 5u);
}

TEST(Coords, IndexRoundTrip) {
  const MeshDims d{8, 8};
  for (unsigned i = 0; i < d.core_count(); ++i) {
    EXPECT_EQ(d.index_of(d.coord_of(i)), i);
  }
}

TEST(Coords, NeighbourEdges) {
  const MeshDims d{8, 8};
  CoreCoord out;
  EXPECT_FALSE(d.neighbour({0, 0}, Dir::North, out));
  EXPECT_FALSE(d.neighbour({0, 0}, Dir::West, out));
  ASSERT_TRUE(d.neighbour({0, 0}, Dir::South, out));
  EXPECT_EQ(out, (CoreCoord{1, 0}));
  ASSERT_TRUE(d.neighbour({0, 0}, Dir::East, out));
  EXPECT_EQ(out, (CoreCoord{0, 1}));
  EXPECT_FALSE(d.neighbour({7, 7}, Dir::South, out));
  EXPECT_FALSE(d.neighbour({7, 7}, Dir::East, out));
}

TEST(Coords, NonSquareMesh) {
  const MeshDims d{2, 4};
  EXPECT_EQ(d.core_count(), 8u);
  EXPECT_TRUE(d.contains({1, 3}));
  EXPECT_FALSE(d.contains({2, 0}));
  EXPECT_FALSE(d.contains({0, 4}));
}

TEST(AddressMap, CoreZeroMatchesE64G401) {
  // On the E64G401 the first core is at absolute (32,8): id 0x808, so its
  // scratchpad aliases globally at 0x80800000.
  const AddressMap m{{8, 8}};
  EXPECT_EQ(m.core_id({0, 0}), 0x808u);
  EXPECT_EQ(m.global({0, 0}, 0), 0x80800000u);
  EXPECT_EQ(m.global({7, 7}, 0x1234), 0x9CF01234u);
}

TEST(AddressMap, GlobalRoundTripAllCores) {
  const AddressMap m{{8, 8}};
  for (unsigned r = 0; r < 8; ++r) {
    for (unsigned c = 0; c < 8; ++c) {
      const Addr a = m.global({r, c}, 0x2F00);
      auto core = m.core_of(a);
      ASSERT_TRUE(core.has_value());
      EXPECT_EQ(*core, (CoreCoord{r, c}));
      EXPECT_EQ(AddressMap::local_offset(a), 0x2F00u);
    }
  }
}

TEST(AddressMap, LocalAliasWindow) {
  EXPECT_TRUE(AddressMap::is_local_alias(0x0000));
  EXPECT_TRUE(AddressMap::is_local_alias(0x7FFF));
  EXPECT_TRUE(AddressMap::is_local_alias(0xFFFFF));
  EXPECT_FALSE(AddressMap::is_local_alias(0x80800000));
}

TEST(AddressMap, ExternalWindow) {
  const AddressMap m = AddressMap::make({8, 8});
  EXPECT_EQ(m.external_base, 0x8E000000u);  // authentic Parallella window
  EXPECT_TRUE(m.is_external(0x8E000000));
  EXPECT_TRUE(m.is_external(0x8E000000 + 32 * 1024 * 1024 - 1));
  EXPECT_FALSE(m.is_external(0x8E000000 + 32 * 1024 * 1024));
  EXPECT_FALSE(m.is_external(0x80800000));
  EXPECT_EQ(m.external_offset(0x8E000010), 0x10u);
}

TEST(AddressMap, LargeMeshLayoutIsCollisionFree) {
  // Projection meshes (paper section IX: up to 4096 cores) relocate the
  // origin and the external window so no core id aliases it.
  for (unsigned edge : {16u, 32u, 62u}) {
    const AddressMap m = AddressMap::make({edge, edge});
    ASSERT_TRUE(m.has_external()) << edge;
    for (unsigned r = 0; r < edge; ++r) {
      for (unsigned c = 0; c < edge; ++c) {
        const Addr a = m.global({r, c}, 0x1000);
        EXPECT_FALSE(m.is_external(a)) << edge << ":" << r << "," << c;
        auto core = m.core_of(a);
        ASSERT_TRUE(core.has_value()) << edge << ":" << r << "," << c;
        EXPECT_EQ(*core, (CoreCoord{r, c}));
      }
    }
    EXPECT_FALSE(m.core_of(m.external_base).has_value());
    EXPECT_FALSE(m.core_of(m.external_base + m.external_bytes - 1).has_value());
  }
}

TEST(AddressMap, FullRoadmapMeshHasNoExternalWindow) {
  // 63x63 core windows fill the id space; no row remains for DRAM.
  const AddressMap m = AddressMap::make({63, 63});
  EXPECT_FALSE(m.has_external());
  const Addr a = m.global({62, 62}, 0x7FFC);
  auto core = m.core_of(a);
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(*core, (CoreCoord{62, 62}));
}

TEST(AddressMap, OversizedMeshRejected) {
  EXPECT_THROW((void)AddressMap::make({64, 64}), std::invalid_argument);
  EXPECT_THROW((void)AddressMap::make({8, 80}), std::invalid_argument);
}

TEST(AddressMap, ExternalWindowIsNotACore) {
  const AddressMap m{{8, 8}};
  EXPECT_FALSE(m.core_of(0x8E000000).has_value());
  EXPECT_FALSE(m.core_of(0x00001000).has_value());  // local alias
}

TEST(AddressMap, BankAssignment) {
  EXPECT_EQ(AddressMap::bank_of(0x0000), 0u);
  EXPECT_EQ(AddressMap::bank_of(0x1FFF), 0u);
  EXPECT_EQ(AddressMap::bank_of(0x2000), 1u);
  EXPECT_EQ(AddressMap::bank_of(0x4000), 2u);
  EXPECT_EQ(AddressMap::bank_of(0x6000), 3u);
  EXPECT_EQ(AddressMap::bank_of(0x7FFF), 3u);
}

TEST(Timing, PeakMatchesPaper) {
  const TimingParams t{};
  // Section IV: 76.8 single-precision GFLOPS on 64 cores at 600 MHz.
  EXPECT_DOUBLE_EQ(t.peak_gflops_per_core() * 64, 76.8);
}

TEST(Timing, ELinkSustainedWriteRate) {
  const TimingParams t{};
  // Section V-B: 150 MB/s observed, "exactly one quarter" of 600 MB/s.
  EXPECT_DOUBLE_EQ(t.elink_write_bytes_per_sec(), 150e6);
}

TEST(Timing, SecondsAndGflops) {
  const TimingParams t{};
  EXPECT_DOUBLE_EQ(t.seconds(600'000'000), 1.0);
  EXPECT_DOUBLE_EQ(t.gflops(76.8e9, 600'000'000), 76.8);
  EXPECT_DOUBLE_EQ(t.gflops(1.0, 0), 0.0);
}

TEST(Timing, TableOneCalibration) {
  // 80-byte message = 20 words; Table I: 11.12 ns/word at distance 1.
  const TimingParams t{};
  const double ns_per_word = t.direct_write_cycles_per_word / t.clock_hz * 1e9;
  EXPECT_NEAR(ns_per_word, 11.12, 0.02);
  // At distance 14: 12.57 ns/word.
  const double ns_far =
      (t.direct_write_cycles_per_word + 13 * t.direct_write_cycles_per_word_per_hop) /
      t.clock_hz * 1e9;
  EXPECT_NEAR(ns_far, 12.57, 0.05);
}

}  // namespace
