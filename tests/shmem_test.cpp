// epi-shmem: the OpenSHMEM-style PGAS runtime. Covers the symmetric heap
// (alignment, determinism, exhaustion), one-sided put/get on both the
// direct-store and DMA paths, put_with_signal ordering, barrier_all with a
// straggler, collectives against host references, the shmem.* counters, and
// the sanitizer contract: clean shmem programs produce zero findings while
// a get-before-signal consumer is flagged as a race.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "lint/sanitizer.hpp"
#include "shmem/shmem.hpp"
#include "shmem/workloads.hpp"

namespace {

using namespace epi;
using arch::Addr;

std::string dump(const lint::MemSanitizer& san) {
  std::string s;
  for (const auto& f : san.findings()) s += f.format("<run>") + "\n";
  return s;
}

// ---- symmetric heap -------------------------------------------------------

TEST(ShmemHeap, AllocatesAlignedAndDeterministic) {
  shmem::SymmetricHeap h(shmem::kDefaultHeapBase, shmem::kDefaultHeapEnd);
  const Addr a = h.alloc(12);           // default 8-byte alignment
  const Addr b = h.alloc(4, 4);
  const Addr c = h.alloc(64, 32);
  EXPECT_EQ(a, shmem::kDefaultHeapBase);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b, a + 12u);                // 12 is already 4-aligned
  EXPECT_EQ(c % 32, 0u);
  EXPECT_GE(c, b + 4u);
  // Same allocation sequence, same offsets: the property verify-at-reap
  // leans on to re-derive a job's plan without carrying state.
  shmem::SymmetricHeap h2(shmem::kDefaultHeapBase, shmem::kDefaultHeapEnd);
  EXPECT_EQ(h2.alloc(12), a);
  EXPECT_EQ(h2.alloc(4, 4), b);
  EXPECT_EQ(h2.alloc(64, 32), c);
}

TEST(ShmemHeap, ExhaustionAndBadArgumentsThrow) {
  shmem::SymmetricHeap h(0x2000, 0x2100);  // 256-byte heap
  EXPECT_THROW((void)h.alloc(0), std::invalid_argument);
  EXPECT_THROW((void)h.alloc(8, 3), std::invalid_argument);   // not a power of 2
  EXPECT_THROW((void)h.alloc(0x200), std::bad_alloc);         // larger than heap
  (void)h.alloc(0xF8);
  EXPECT_THROW((void)h.alloc(16), std::bad_alloc);            // now exhausted
  h.reset();
  EXPECT_EQ(h.alloc(16), 0x2000u);
  // The heap may not overlap the runtime flag words or leave the scratchpad.
  EXPECT_THROW(shmem::SymmetricHeap(0x0100, 0x2000), std::invalid_argument);
  EXPECT_THROW(shmem::SymmetricHeap(0x2000, 0x2000), std::invalid_argument);
  EXPECT_THROW(
      shmem::SymmetricHeap(0x2000, arch::AddressMap::kLocalMemBytes + 4),
      std::invalid_argument);
}

// ---- one-sided put/get ----------------------------------------------------

/// PE 0 pushes one small (direct-store path) and one large (DMA path) block
/// into PE 1 and signals; PE 1 acquires on the signal. Host-validates both
/// landing zones afterwards; with the sanitizer armed the run must be clean.
TEST(Shmem, PutSmallAndLargeWithSignal) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 2);
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const std::uint32_t small_bytes = 16;    // <= dma_threshold: direct stores
  const std::uint32_t large_bytes = 1024;  // > dma_threshold: DMA descriptor
  const Addr small = group->heap().alloc(small_bytes);
  const Addr large = group->heap().alloc(large_bytes);
  const Addr sig = group->heap().alloc(4, 4);

  wg.load([group, small, large, sig](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g, Addr sm,
              Addr lg, Addr flag) -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      if (pe.my_pe() == 0) {
        auto& mem = g->machine().mem();
        for (std::uint32_t off = 0; off < 16; off += 4) {
          mem.write_value<std::uint32_t>(c.my_global(sm + off), 0x5100 + off,
                                         c.coord());
        }
        for (std::uint32_t off = 0; off < 1024; off += 4) {
          mem.write_value<std::uint32_t>(c.my_global(lg + off), 0xB1000000 + off,
                                         c.coord());
        }
        co_await pe.put(1, sm, sm, 16);
        co_await pe.put_with_signal(1, lg, lg, 1024, flag, 1);
      } else {
        co_await pe.wait_signal_ge(flag, 1);
        // Touch both blocks under the acquire edge (clean to the sanitizer).
        (void)co_await c.read_u32(c.my_global(sm));
        (void)co_await c.read_u32(c.my_global(lg + 1020));
      }
    }(ctx, group, small, large, sig);
  });
  wg.run();

  const auto& map = sys.machine().mem().map();
  const arch::CoreCoord peer{0, 1};
  for (std::uint32_t off = 0; off < small_bytes; off += 4) {
    std::uint32_t got = 0;
    sys.read(map.global(peer, small + off),
             std::as_writable_bytes(std::span<std::uint32_t, 1>(&got, 1)));
    EXPECT_EQ(got, 0x5100 + off);
  }
  for (std::uint32_t off = 0; off < large_bytes; off += 256) {
    std::uint32_t got = 0;
    sys.read(map.global(peer, large + off),
             std::as_writable_bytes(std::span<std::uint32_t, 1>(&got, 1)));
    EXPECT_EQ(got, 0xB1000000 + off);
  }
  EXPECT_TRUE(san.findings().empty()) << dump(san);
  EXPECT_GE(group->counters().value("shmem.puts"), 2.0);
  EXPECT_GE(group->counters().value("shmem.bytes"),
            static_cast<double>(small_bytes + large_bytes));
}

/// PE 1 pulls host-preloaded data out of PE 0 on both get paths.
TEST(Shmem, GetSmallAndLarge) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(2, 1, 1, 2);  // off-origin group: addressing is relative
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const std::uint32_t small_bytes = 32;
  const std::uint32_t large_bytes = 512;
  const Addr src_small = group->heap().alloc(small_bytes);
  const Addr src_large = group->heap().alloc(large_bytes);
  const Addr dst_small = group->heap().alloc(small_bytes);
  const Addr dst_large = group->heap().alloc(large_bytes);

  const auto& map = sys.machine().mem().map();
  std::vector<std::uint32_t> payload;
  for (std::uint32_t w = 0; w < (small_bytes + large_bytes) / 4; ++w) {
    payload.push_back(0xD000 + w * 3);
  }
  sys.write(map.global({2, 1}, src_small),
            std::as_bytes(std::span(payload.data(), small_bytes / 4)));
  sys.write(map.global({2, 1}, src_large),
            std::as_bytes(std::span(payload.data() + small_bytes / 4,
                                    large_bytes / 4)));

  wg.load([=](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g, Addr ss,
              Addr sl, Addr ds, Addr dl) -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      if (pe.my_pe() == 1) {
        co_await pe.get(0, ds, ss, 32);
        co_await pe.get(0, dl, sl, 512);
      }
    }(ctx, group, src_small, src_large, dst_small, dst_large);
  });
  wg.run();

  for (std::uint32_t w = 0; w < (small_bytes + large_bytes) / 4; ++w) {
    const Addr at = w < small_bytes / 4
                        ? dst_small + 4 * w
                        : dst_large + 4 * (w - small_bytes / 4);
    std::uint32_t got = 0;
    sys.read(map.global({2, 2}, at),
             std::as_writable_bytes(std::span<std::uint32_t, 1>(&got, 1)));
    EXPECT_EQ(got, payload[w]) << "word " << w;
  }
  EXPECT_TRUE(san.findings().empty()) << dump(san);
  EXPECT_GE(group->counters().value("shmem.gets"), 2.0);
}

// ---- barrier_all ----------------------------------------------------------

/// All-to-all token exchange around barrier_all, with the last PE straggling
/// 200k cycles before it deposits. If the barrier released anyone early the
/// token check (and the sanitizer) would catch the stale read.
TEST(Shmem, BarrierAllHoldsForStraggler) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(1, 3, 2, 2);
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const unsigned n = group->n_pes();
  const Addr box = group->heap().alloc(4 * n);   // one slot per sender
  const Addr stage = group->heap().alloc(4, 4);  // my outgoing token
  std::vector<std::uint32_t> got(n * n, 0);

  wg.load([&got, group, box, stage](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g, Addr bx,
              Addr st, std::vector<std::uint32_t>& out) -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      const unsigned me = pe.my_pe();
      const unsigned np = pe.n_pes();
      if (me == np - 1) co_await c.compute(200'000);  // straggler
      co_await c.write_u32(c.my_global(st), 0xAA00 + me);
      co_await c.write_u32(c.my_global(bx + 4 * me), 0xAA00 + me);
      for (unsigned p = 0; p < np; ++p) {
        if (p != me) co_await pe.put(p, bx + 4 * me, st, 4);
      }
      co_await pe.barrier_all();
      for (unsigned p = 0; p < np; ++p) {
        out[me * np + p] = co_await c.read_u32(c.my_global(bx + 4 * p));
      }
    }(ctx, group, box, stage, got);
  });
  wg.run();

  for (unsigned me = 0; me < n; ++me) {
    for (unsigned p = 0; p < n; ++p) {
      EXPECT_EQ(got[me * n + p], 0xAA00 + p) << "PE " << me << " slot " << p;
    }
  }
  EXPECT_TRUE(san.findings().empty()) << dump(san);
  EXPECT_GE(group->counters().value("shmem.barrier_waits"),
            static_cast<double>(2 * n));  // ceil(log2(4)) rounds per PE
}

// ---- collectives ----------------------------------------------------------

TEST(Shmem, AllreduceMatchesHostReference) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 2, 3);  // 6 PEs: a non-power-of-two tree
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const unsigned n = group->n_pes();

  std::vector<std::int32_t> vi(n);
  std::vector<float> vf(n);
  for (unsigned p = 0; p < n; ++p) {
    vi[p] = static_cast<std::int32_t>(p) * 3 - 4;
    vf[p] = static_cast<float>(p) * 0.5f - 1.25f;
  }
  std::int32_t isum = 0, imin = vi[0], imax = vi[0];
  float fsum = 0.0f, fmin = vf[0], fmax = vf[0];
  for (unsigned p = 0; p < n; ++p) {
    isum += vi[p];
    imin = std::min(imin, vi[p]);
    imax = std::max(imax, vi[p]);
    fmin = std::min(fmin, vf[p]);
    fmax = std::max(fmax, vf[p]);
  }
  // The tree reduces in a fixed deterministic order; for the float *sum* we
  // compare against that exact order (combine is left-to-right up the tree,
  // which for these values is still exact anyway).
  for (unsigned p = 0; p < n; ++p) fsum += vf[p];

  std::vector<std::int32_t> ri_sum(n), ri_min(n), ri_max(n);
  std::vector<float> rf_sum(n), rf_min(n), rf_max(n);
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g,
              std::vector<std::int32_t>& in_i, std::vector<float>& in_f,
              std::vector<std::int32_t>& o_sum, std::vector<std::int32_t>& o_min,
              std::vector<std::int32_t>& o_max, std::vector<float>& f_sum,
              std::vector<float>& f_min, std::vector<float>& f_max)
               -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      const unsigned me = pe.my_pe();
      o_sum[me] = co_await pe.allreduce_i32(shmem::ReduceOp::Sum, in_i[me]);
      o_min[me] = co_await pe.allreduce_i32(shmem::ReduceOp::Min, in_i[me]);
      o_max[me] = co_await pe.allreduce_i32(shmem::ReduceOp::Max, in_i[me]);
      f_sum[me] = co_await pe.allreduce_f32(shmem::ReduceOp::Sum, in_f[me]);
      f_min[me] = co_await pe.allreduce_f32(shmem::ReduceOp::Min, in_f[me]);
      f_max[me] = co_await pe.allreduce_f32(shmem::ReduceOp::Max, in_f[me]);
    }(ctx, group, vi, vf, ri_sum, ri_min, ri_max, rf_sum, rf_min, rf_max);
  });
  wg.run();

  for (unsigned p = 0; p < n; ++p) {
    EXPECT_EQ(ri_sum[p], isum) << "PE " << p;
    EXPECT_EQ(ri_min[p], imin) << "PE " << p;
    EXPECT_EQ(ri_max[p], imax) << "PE " << p;
    EXPECT_EQ(rf_sum[p], fsum) << "PE " << p;
    EXPECT_EQ(rf_min[p], fmin) << "PE " << p;
    EXPECT_EQ(rf_max[p], fmax) << "PE " << p;
  }
  EXPECT_TRUE(san.findings().empty()) << dump(san);
  EXPECT_EQ(group->counters().value("shmem.reductions"),
            static_cast<double>(6 * n));
}

TEST(Shmem, BroadcastDeliversRootBlockToEveryPe) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 5);  // non-power-of-two chain
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const unsigned n = group->n_pes();
  const unsigned root = 2;
  const std::uint32_t bytes = 32;
  const Addr blk = group->heap().alloc(bytes);

  const auto& map = sys.machine().mem().map();
  std::vector<std::uint32_t> payload;
  for (std::uint32_t w = 0; w < bytes / 4; ++w) payload.push_back(0xBC00 + w);
  sys.write(map.global(group->coord_of(root), blk), std::as_bytes(std::span(payload)));

  wg.load([group, blk, root](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g, Addr b,
              unsigned r) -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      co_await pe.broadcast(r, b, 32);
      if (pe.my_pe() != r) (void)co_await c.read_u32(c.my_global(b));
    }(ctx, group, blk, root);
  });
  wg.run();

  for (unsigned p = 0; p < n; ++p) {
    for (std::uint32_t w = 0; w < bytes / 4; ++w) {
      std::uint32_t got = 0;
      sys.read(map.global(group->coord_of(p), blk + 4 * w),
               std::as_writable_bytes(std::span<std::uint32_t, 1>(&got, 1)));
      EXPECT_EQ(got, payload[w]) << "PE " << p << " word " << w;
    }
  }
  EXPECT_TRUE(san.findings().empty()) << dump(san);
  EXPECT_EQ(group->counters().value("shmem.broadcasts"), 1.0);
}

// ---- sanitizer contract ---------------------------------------------------

/// The seeded misuse: the producer streams a DMA-sized block with
/// put_with_signal, but the consumer reads the landing zone before acquiring
/// on the signal word. The runtime sanitizer must flag the race; the
/// clean twin (wait first) must verify empty.
std::vector<lint::Finding> get_before_signal(bool consumer_waits) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 2);
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const std::uint32_t bytes = 512;  // DMA path
  const Addr blk = group->heap().alloc(bytes);
  const Addr sig = group->heap().alloc(4, 4);

  wg.load([group, blk, sig, consumer_waits](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g, Addr b,
              Addr flag, bool waits) -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      if (pe.my_pe() == 0) {
        auto& mem = g->machine().mem();
        for (std::uint32_t off = 0; off < 512; off += 4) {
          mem.write_value<std::uint32_t>(c.my_global(b + off), off, c.coord());
        }
        co_await pe.put_with_signal(1, b, b, 512, flag, 1);
      } else {
        // Late enough that the DMA payload has landed: the defective read
        // is a *race*, not an uninitialised read.
        co_await c.compute(100'000);
        if (waits) co_await pe.wait_signal_ge(flag, 1);
        (void)co_await c.read_u32(c.my_global(b));
      }
    }(ctx, group, blk, sig, consumer_waits);
  });
  wg.run();
  return san.findings();
}

TEST(Shmem, GetBeforeSignalIsARuntimeRace) {
  const auto fs = get_before_signal(/*consumer_waits=*/false);
  std::size_t races = 0;
  for (const auto& f : fs) races += f.pass == std::string("race");
  EXPECT_EQ(races, 1u);
}

TEST(Shmem, WaitSignalGeOrdersTheConsumer) {
  const auto fs = get_before_signal(/*consumer_waits=*/true);
  EXPECT_TRUE(fs.empty());
}

// ---- workloads ------------------------------------------------------------

TEST(ShmemWorkloads, CannonMatchesHostReference) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(1, 1, 2, 2);
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const auto plan = shmem::plan_cannon(group->heap(), wg.info(), /*block=*/8,
                                       /*iters=*/2);
  shmem::fill_cannon_inputs(sys.machine(), wg.info(), plan, /*seed=*/7);
  wg.load([group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
    return shmem::cannon_kernel(ctx, group, plan);
  });
  wg.run();
  EXPECT_EQ(shmem::verify_cannon_output(sys.machine(), wg.info(), plan, 7), "");
  EXPECT_TRUE(san.findings().empty()) << dump(san);
}

TEST(ShmemWorkloads, CannonOnNonSquareGroupUsesActiveSquare) {
  host::System sys;
  auto wg = sys.open(0, 0, 2, 3);  // p = 2; one idle column barriers along
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const auto plan = shmem::plan_cannon(group->heap(), wg.info(), 4, 1);
  EXPECT_EQ(plan.p, 2u);
  shmem::fill_cannon_inputs(sys.machine(), wg.info(), plan, 11);
  wg.load([group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
    return shmem::cannon_kernel(ctx, group, plan);
  });
  wg.run();
  EXPECT_EQ(shmem::verify_cannon_output(sys.machine(), wg.info(), plan, 11), "");
}

TEST(ShmemWorkloads, TransposeMatchesHostReference) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(3, 2, 2, 3);
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const auto plan =
      shmem::plan_transpose(group->heap(), wg.info(), /*elems=*/5, /*iters=*/2);
  shmem::fill_transpose_inputs(sys.machine(), wg.info(), plan, /*seed=*/42);
  wg.load([group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
    return shmem::transpose_kernel(ctx, group, plan);
  });
  wg.run();
  EXPECT_EQ(shmem::verify_transpose_output(sys.machine(), wg.info(), plan, 42), "");
  EXPECT_TRUE(san.findings().empty()) << dump(san);
}

}  // namespace
