// Tests for the stencil schedule model, kernels and multi-core halo
// exchange. Multi-core results must be *bit-identical* to the host
// reference (same arithmetic order per point).

#include <gtest/gtest.h>

#include "core/stencil.hpp"

namespace {

using namespace epi;
using core::Codegen;
using core::StencilConfig;
using core::StencilSchedule;
using core::StencilShape;

// ---- schedule model ---------------------------------------------------------

TEST(StencilSchedule, SingleCoreEfficiencyBand) {
  // Figure 5: 0.97-1.14 GFLOPS (81-95% of 1.2 GF peak) across grid shapes.
  const arch::TimingParams t{};
  const std::pair<unsigned, unsigned> shapes[] = {{20, 20}, {40, 20}, {80, 20}, {20, 40},
                                                  {20, 80}, {40, 40}, {60, 60}, {80, 80},
                                                  {24, 24}, {60, 20}};
  for (auto [r, c] : shapes) {
    const auto cy = StencilSchedule::iteration_cycles(r, c, Codegen::TunedAsm);
    const double gf = t.gflops(StencilSchedule::iteration_flops(r, c), cy);
    EXPECT_GE(gf, 0.95) << r << "x" << c;
    EXPECT_LE(gf, 1.15) << r << "x" << c;
  }
}

TEST(StencilSchedule, PeakShapeMatchesPaper) {
  // The paper's best single-core shape is tall-and-narrow (80x20 -> 1.14 GF).
  const arch::TimingParams t{};
  const auto cy = StencilSchedule::iteration_cycles(80, 20, Codegen::TunedAsm);
  const double gf = t.gflops(StencilSchedule::iteration_flops(80, 20), cy);
  EXPECT_NEAR(gf, 1.14, 0.02);
}

TEST(StencilSchedule, MoreRowsBeatsMoreCols) {
  // Figure 5: grids with more rows than columns perform slightly better.
  const auto tall = StencilSchedule::iteration_cycles(80, 20, Codegen::TunedAsm);
  const auto wide = StencilSchedule::iteration_cycles(20, 80, Codegen::TunedAsm);
  EXPECT_LT(tall, wide);
}

TEST(StencilSchedule, RaggedStripesCostMore) {
  // 24 columns = one full stripe + a ragged 4-wide stripe: lower efficiency
  // than the same area in full stripes.
  const arch::TimingParams t{};
  const double gf24 = t.gflops(StencilSchedule::iteration_flops(24, 24),
                               StencilSchedule::iteration_cycles(24, 24, Codegen::TunedAsm));
  const double gf20 = t.gflops(StencilSchedule::iteration_flops(24, 20),
                               StencilSchedule::iteration_cycles(24, 20, Codegen::TunedAsm));
  EXPECT_LT(gf24, gf20);
}

TEST(StencilSchedule, CCompilerFarBelowTuned) {
  const auto tuned = StencilSchedule::iteration_cycles(80, 20, Codegen::TunedAsm);
  const auto cc = StencilSchedule::iteration_cycles(80, 20, Codegen::CCompiler);
  EXPECT_GT(cc, 3 * tuned);  // "a small fraction of peak"
}

TEST(StencilSchedule, ZeroSizedGridIsFree) {
  EXPECT_EQ(StencilSchedule::iteration_cycles(0, 20, Codegen::TunedAsm), 0u);
  EXPECT_EQ(StencilSchedule::iteration_cycles(20, 0, Codegen::TunedAsm), 0u);
}

TEST(StencilSchedule, MonotoneInArea) {
  sim::Cycles prev = 0;
  for (unsigned r = 10; r <= 80; r += 10) {
    const auto cy = StencilSchedule::iteration_cycles(r, 20, Codegen::TunedAsm);
    EXPECT_GT(cy, prev);
    prev = cy;
  }
}

// ---- single-core functional correctness ------------------------------------

TEST(StencilKernel, SingleCoreMatchesReferenceExactly) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.iters = 5;
  auto ex = core::run_stencil_experiment(sys, 1, 1, cfg, 42, true);
  EXPECT_TRUE(ex.verified);
  EXPECT_EQ(ex.max_error, 0.0f);
  EXPECT_GT(ex.result.gflops, 0.9);
}

TEST(StencilKernel, TileTooLargeThrows) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 100;
  cfg.cols = 100;
  EXPECT_THROW((void)core::run_stencil_experiment(sys, 1, 1, cfg, 1, false),
               std::invalid_argument);
}

TEST(StencilKernel, XShapedVariantMatchesReference) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.iters = 3;
  cfg.shape = StencilShape::X5;
  auto ex = core::run_stencil_experiment(sys, 1, 1, cfg, 7, true);
  EXPECT_TRUE(ex.verified);
}

TEST(StencilKernel, NinePointVariantMatchesReference) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.iters = 3;
  cfg.shape = StencilShape::Nine;
  cfg.weights9 = {0.05f, 0.1f, 0.05f, 0.1f, 0.4f, 0.1f, 0.05f, 0.1f, 0.05f};
  auto ex = core::run_stencil_experiment(sys, 1, 1, cfg, 9, true);
  EXPECT_TRUE(ex.verified);
}

TEST(StencilKernel, NinePointCostsMoreThanFivePoint) {
  host::System sys;
  StencilConfig five;
  five.rows = five.cols = 20;
  five.iters = 4;
  StencilConfig nine = five;
  nine.shape = StencilShape::Nine;
  auto e5 = core::run_stencil_experiment(sys, 1, 1, five, 3, false);
  host::System sys2;
  auto e9 = core::run_stencil_experiment(sys2, 1, 1, nine, 3, false);
  EXPECT_GT(e9.result.cycles, e5.result.cycles);
}

TEST(StencilKernel, MultiCoreNinePointExactWithCornerExchange) {
  // Full-3x3 footprints need the diagonal corner cells; the kernel delivers
  // them with a dedicated diagonal handshake.
  host::System sys;
  StencilConfig cfg;
  cfg.rows = cfg.cols = 10;
  cfg.iters = 4;
  cfg.shape = StencilShape::Nine;
  cfg.weights9 = {0.05f, 0.1f, 0.05f, 0.1f, 0.4f, 0.1f, 0.05f, 0.1f, 0.05f};
  auto ex = core::run_stencil_experiment(sys, 3, 3, cfg, 404, true);
  EXPECT_EQ(ex.max_error, 0.0f);
}

TEST(StencilKernel, MultiCoreXShapedExactWithCornerExchange) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 8;
  cfg.cols = 12;
  cfg.iters = 5;
  cfg.shape = StencilShape::X5;
  auto ex = core::run_stencil_experiment(sys, 2, 4, cfg, 505, true);
  EXPECT_EQ(ex.max_error, 0.0f);
}

TEST(StencilKernel, DoubleBufferedCannotServeCorners) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = cfg.cols = 12;
  cfg.shape = StencilShape::Nine;
  cfg.double_buffer_boundaries = true;
  EXPECT_THROW((void)core::run_stencil_experiment(sys, 2, 2, cfg, 1, false),
               std::invalid_argument);
}

// ---- multi-core halo exchange: the central integration test ----------------

struct GroupCase {
  unsigned gr, gc, rows, cols, iters;
};

class StencilGroups : public ::testing::TestWithParam<GroupCase> {};

TEST_P(StencilGroups, MatchesGlobalReferenceExactly) {
  const auto p = GetParam();
  host::System sys;
  StencilConfig cfg;
  cfg.rows = p.rows;
  cfg.cols = p.cols;
  cfg.iters = p.iters;
  auto ex = core::run_stencil_experiment(sys, p.gr, p.gc, cfg, 1000 + p.gr * 10 + p.gc, true);
  EXPECT_EQ(ex.max_error, 0.0f)
      << p.gr << "x" << p.gc << " group of " << p.rows << "x" << p.cols;
  EXPECT_TRUE(ex.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, StencilGroups,
    ::testing::Values(GroupCase{1, 2, 12, 12, 4}, GroupCase{2, 1, 12, 12, 4},
                      GroupCase{2, 2, 12, 12, 4}, GroupCase{2, 4, 10, 8, 3},
                      GroupCase{4, 2, 8, 10, 3}, GroupCase{4, 4, 12, 12, 3},
                      GroupCase{3, 3, 7, 9, 3}, GroupCase{8, 8, 6, 6, 2},
                      GroupCase{1, 8, 10, 10, 3}, GroupCase{8, 1, 10, 10, 3}));

TEST(StencilKernel, DoubleBufferedBoundariesMatchReference) {
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.iters = 5;
  cfg.double_buffer_boundaries = true;
  auto ex = core::run_stencil_experiment(sys, 2, 2, cfg, 77, true);
  EXPECT_EQ(ex.max_error, 0.0f);
}

TEST(StencilKernel, DoubleBufferedBoundariesNotSlower) {
  StencilConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.iters = 10;
  host::System a;
  auto plain = core::run_stencil_experiment(a, 2, 2, cfg, 5, false);
  cfg.double_buffer_boundaries = true;
  host::System b;
  auto dbuf = core::run_stencil_experiment(b, 2, 2, cfg, 5, false);
  EXPECT_LE(dbuf.result.cycles, plain.result.cycles);
}

TEST(StencilKernel, CommunicationCostsThroughput) {
  StencilConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.iters = 10;
  host::System a;
  auto with_comm = core::run_stencil_experiment(a, 2, 2, cfg, 5, false);
  cfg.communicate = false;
  host::System b;
  auto without = core::run_stencil_experiment(b, 2, 2, cfg, 5, false);
  EXPECT_GT(with_comm.result.cycles, without.result.cycles);
  EXPECT_LT(with_comm.result.compute_fraction, 1.0);
  EXPECT_DOUBLE_EQ(without.result.compute_fraction, 1.0);
}

TEST(StencilKernel, SixtyFourCoreEfficiencyMatchesFigure6) {
  // Figure 6: with communication, the 80x20-per-core grid runs at ~82.8% of
  // peak (63.6 of 76.8 GFLOPS). Accept 80-92%.
  host::System sys;
  StencilConfig cfg;
  cfg.rows = 80;
  cfg.cols = 20;
  cfg.iters = 10;
  auto ex = core::run_stencil_experiment(sys, 8, 8, cfg, 21, false);
  const double frac = ex.result.gflops / 76.8;
  EXPECT_GT(frac, 0.78);
  EXPECT_LT(frac, 0.92);
}

TEST(StencilKernel, ResultGridSizeValidated) {
  host::System sys;
  StencilConfig cfg;
  std::vector<float> wrong(10);
  EXPECT_THROW((void)core::run_stencil(sys, 1, 1, cfg, wrong), std::invalid_argument);
}

}  // namespace
