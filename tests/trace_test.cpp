// epi-trace: determinism, export validity, counter discipline, and the
// profiler's attribution-completeness invariant. The scenarios are small
// versions of the instrumented benches (off-chip matmul, eLink contention)
// so the tests exercise every event source: core phases, mesh links, eLink
// grants, DMA descriptors, memory hooks, and sync operations.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/matmul.hpp"
#include "core/microbench.hpp"
#include "host/system.hpp"
#include "trace/counters.hpp"
#include "trace/export.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace epi;
using arch::CoreCoord;

constexpr arch::Addr kFlag = 0x5000;

/// A small off-chip matmul with every subsystem involved: host preload over
/// the eLink, per-core DMA paging, barriers, compute, and write-back.
void run_offchip_scenario(host::System& sys) {
  core::run_matmul_offchip(sys, 64, 2, 16, core::Codegen::TunedAsm, 42, false);
}

std::string export_trace(const trace::Tracer& t) {
  std::ostringstream os;
  trace::write_chrome_trace(os, t);
  return os.str();
}

std::string export_csv(const trace::Tracer& t) {
  std::ostringstream os;
  trace::write_counters_csv(os, t.counters());
  return os.str();
}

TEST(Trace, DeterministicAcrossRuns) {
  std::string json[2], csv[2];
  sim::Cycles end[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    host::System sys;
    trace::Tracer& t = sys.machine().enable_tracing();
    run_offchip_scenario(sys);
    json[i] = export_trace(t);
    csv[i] = export_csv(t);
    end[i] = sys.engine().now();
  }
  EXPECT_EQ(end[0], end[1]);
  EXPECT_EQ(json[0], json[1]) << "trace.json must be byte-identical run to run";
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_GT(json[0].size(), 1000u);  // a real trace, not an empty shell
}

TEST(Trace, ChromeTraceIsWellFormed) {
  host::System sys;
  trace::Tracer& t = sys.machine().enable_tracing();
  run_offchip_scenario(sys);
  const std::string json = export_trace(t);

  // Envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ns\"}"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);

  // Structural sanity without a JSON library: the exporter never emits raw
  // control characters, and braces/brackets balance.
  long braces = 0, brackets = 0;
  for (const char c : json) {
    ASSERT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "unescaped control character in trace.json";
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // Every Begin is matched by an End on the same track, in order.
  std::map<std::uint32_t, long> depth;
  for (const auto& ev : t.events()) {
    if (ev.type == trace::Event::Type::Begin) ++depth[ev.track];
    if (ev.type == trace::Event::Type::End) {
      ASSERT_GT(depth[ev.track], 0) << "End without Begin on track "
                                    << t.tracks()[ev.track].name;
      --depth[ev.track];
    }
  }
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on track " << t.tracks()[track].name;
  }

  // Per-track timestamps never go backwards. (Global order is recording
  // order, not time order: compute() logs its whole span at issue time, so
  // its End can carry a timestamp later than the next event recorded --
  // Perfetto sorts per thread, which is exactly this invariant.)
  std::map<std::uint32_t, sim::Cycles> last;
  for (const auto& ev : t.events()) {
    if (ev.type == trace::Event::Type::Counter) continue;
    const auto it = last.find(ev.track);
    if (it != last.end()) {
      EXPECT_GE(ev.t, it->second)
          << "track " << t.tracks()[ev.track].name << " went backwards";
    }
    last[ev.track] = ev.t;
  }
}

TEST(Trace, MonotonicCountersNeverDecrease) {
  host::System sys;
  trace::Tracer& t = sys.machine().enable_tracing();
  run_offchip_scenario(sys);

  std::map<std::uint32_t, double> last;
  unsigned samples = 0;
  for (const auto& ev : t.events()) {
    if (ev.type != trace::Event::Type::Counter) continue;
    if (t.counters().kind(ev.track) != trace::Counters::Kind::Monotonic) continue;
    const auto it = last.find(ev.track);
    if (it != last.end()) {
      EXPECT_GE(ev.value, it->second)
          << "counter " << t.counters().name(ev.track) << " decreased";
    }
    last[ev.track] = ev.value;
    ++samples;
  }
  EXPECT_GT(samples, 100u);  // the scenario produces real counter traffic
  EXPECT_GT(t.counters().value("elink.write.bytes"), 0.0);
  EXPECT_GT(t.counters().value("dma.bytes"), 0.0);
  EXPECT_GT(t.counters().value("flops"), 0.0);
}

TEST(Trace, CounterRegistryEnforcesDiscipline) {
  trace::Counters c;
  const auto mono = c.define("bytes", trace::Counters::Kind::Monotonic);
  const auto gauge = c.define("occupancy", trace::Counters::Kind::Gauge);

  c.add(mono, 16.0);
  c.add(mono, 8.0);
  EXPECT_DOUBLE_EQ(c.value(mono), 24.0);
  EXPECT_THROW(c.add(mono, -1.0), std::logic_error);
  EXPECT_THROW(c.set(mono, 4.0), std::logic_error);  // decrease via set

  c.set(gauge, 3.0);
  c.set(gauge, 1.0);  // gauges may go down
  EXPECT_DOUBLE_EQ(c.value(gauge), 1.0);

  // Redefinition is idempotent for the same kind, an error for a new one.
  EXPECT_EQ(c.define("bytes", trace::Counters::Kind::Monotonic), mono);
  EXPECT_THROW(c.define("bytes", trace::Counters::Kind::Gauge), std::logic_error);
  EXPECT_DOUBLE_EQ(c.value("no-such-counter"), 0.0);
}

TEST(Trace, AttributionPartitionsTheWindowExactly) {
  host::System sys;
  trace::Tracer& t = sys.machine().enable_tracing();
  run_offchip_scenario(sys);
  const sim::Cycles end = sys.engine().now();

  const auto report = trace::attribute(t, 0, end);
  ASSERT_EQ(report.cores.size(), 4u);  // the 2x2 group
  EXPECT_EQ(report.window(), end);
  for (const auto& core : report.cores) {
    EXPECT_EQ(core.total, report.window());
    EXPECT_GE(core.other, 0) << "negative residual = overlapping spans on "
                             << arch::to_string(core.coord);
    // The invariant the profiler is built on: depth-0 spans partition the
    // window, so the buckets sum back to it exactly.
    EXPECT_EQ(core.attributed() + static_cast<sim::Cycles>(core.other),
              report.window())
        << "attribution does not sum to the window on " << arch::to_string(core.coord);
    EXPECT_GT(core.compute, 0u);
  }
  // Off-chip paging dominates even at this tiny size (paper Table VI).
  EXPECT_GT(report.comm_dma_fraction(), 0.5);
  EXPECT_GT(report.compute_fraction(), 0.0);
}

TEST(Trace, WindowClippingChargesOpenSpans) {
  host::System sys;
  trace::Tracer& t = sys.machine().enable_tracing();
  run_offchip_scenario(sys);
  const sim::Cycles end = sys.engine().now();

  // A half-window report must still partition exactly, with spans straddling
  // the cut clipped at both edges.
  const auto half = trace::attribute(t, end / 4, end / 2);
  for (const auto& core : half.cores) {
    EXPECT_EQ(core.attributed() + static_cast<sim::Cycles>(core.other), half.window());
  }
}

TEST(Trace, SanitizerAndTracerCompose) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  trace::Tracer& t = sys.machine().enable_tracing();
  EXPECT_EQ(sys.machine().mem().hooks().size(), 2u);

  // The Listing-1 race: producer writes a neighbour's scratchpad, consumer
  // reads it without waiting on the flag. Both hooks must observe the run.
  auto wg = sys.open(0, 0, 1, 2);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      if (c.group_index() == 0) {
        co_await c.write_u32(c.global({0, 1}, 0x4000), 7);
      } else {
        co_await c.compute(10000);
        (void)co_await c.read_u32(c.my_global(0x4000));
      }
    }(ctx);
  });
  wg.run();

  EXPECT_EQ(san.count("race"), 1u);                          // sanitizer saw it
  EXPECT_GT(t.counters().value("mem.write.bytes@(0,1)"), 0.0);  // tracer saw it
  const auto report = trace::attribute(t, 0, sys.engine().now());
  EXPECT_EQ(report.cores.size(), 2u);

  sys.machine().disable_tracing();
  EXPECT_EQ(sys.machine().mem().hooks().size(), 1u);
  EXPECT_EQ(sys.machine().tracer(), nullptr);
}

TEST(Trace, DeadlockNamesTheStuckCore) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      co_await c.wait_u32_eq(c.my_global(kFlag), 1);  // nobody ever sets it
    }(ctx);
  });
  try {
    wg.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    ASSERT_FALSE(e.stuck_names.empty());
    EXPECT_EQ(e.stuck_names.front(), "core (0,0)");
    EXPECT_NE(std::string(e.what()).find("core (0,0)"), std::string::npos);
  }
}

TEST(Trace, ElinkContentionRecordsStallsAndGrants) {
  host::System sys;
  trace::Tracer& t = sys.machine().enable_tracing();
  core::measure_elink_contention(sys, 2, 2, 2048, 0.002);

  EXPECT_GT(t.counters().value("elink.write.bytes"), 0.0);
  EXPECT_GT(t.counters().value("elink.write.stall_cycles"), 0.0);
  // The cascade arbiter favours the node nearest the exit: (0,1) outranks
  // (1,0) in bytes granted (Table II's position dependence).
  EXPECT_GE(t.counters().value("elink.write.bytes@(0,1)"),
            t.counters().value("elink.write.bytes@(1,0)"));

  // The eLink track exists and its grant spans carry the stall argument.
  bool saw_grant = false;
  for (const auto& ev : t.events()) {
    if (ev.type != trace::Event::Type::Begin) continue;
    if (t.tracks()[ev.track].name != "eLink write") continue;
    saw_grant = true;
    EXPECT_EQ(t.str(ev.arg_name[0]), "bytes");
    EXPECT_EQ(ev.arg[0], 2048u);
    break;
  }
  EXPECT_TRUE(saw_grant);
}

}  // namespace
