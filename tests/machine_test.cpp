// Tests for machine-level configuration toggles: Errata #0 duplicate IO
// transactions and scratchpad bank-conflict accounting.

#include <gtest/gtest.h>

#include "dma/descriptor.hpp"
#include "host/system.hpp"

namespace {

using namespace epi;
using arch::Addr;
using arch::CoreCoord;
using sim::Cycles;

Cycles remote_read_cost(host::System& sys, CoreCoord reader) {
  auto wg = sys.open(0, 0, 8, 8);
  Cycles cost = 0;
  wg.load([&cost, reader](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, CoreCoord rd, Cycles& out) -> sim::Op<void> {
      if (c.coord() != rd) co_return;
      const Cycles t0 = c.now();
      (void)co_await c.read_u32(c.global({0, 0}, 0x4000));
      out = c.now() - t0;
    }(ctx, reader, cost);
  });
  wg.run();
  return cost;
}

TEST(ErrataDuplicateIO, DisabledByDefault) {
  host::System sys;
  const Cycles normal = remote_read_cost(sys, {1, 4});  // distance 5
  host::System sys2;
  const Cycles row2 = remote_read_cost(sys2, {2, 3});   // distance 5, row 2
  // Same distance from (0,0): identical cost when the erratum is off.
  EXPECT_EQ(normal, row2);
}

TEST(ErrataDuplicateIO, DoublesReadsFromRow2AndCol2) {
  arch::MachineConfig cfg;
  cfg.model_errata_duplicate_io = true;
  // Row 2, column 2 and the intersection are affected; others are not.
  host::System a(cfg);
  const Cycles row2 = remote_read_cost(a, {2, 3});
  host::System b(cfg);
  const Cycles col2 = remote_read_cost(b, {3, 2});
  host::System c(cfg);
  const Cycles clean = remote_read_cost(c, {1, 4});  // distance 5, unaffected
  EXPECT_EQ(row2, col2);  // symmetric distance and both affected
  EXPECT_EQ(row2, 2 * clean);
}

TEST(ErrataDuplicateIO, WritesUnaffected) {
  // The erratum hits fetches and data reads, "nor, apparently, for data
  // writes" (section V-B).
  arch::MachineConfig cfg;
  cfg.model_errata_duplicate_io = true;
  auto measure_store = [](host::System& sys, CoreCoord writer) {
    auto wg = sys.open(0, 0, 8, 8);
    Cycles cost = 0;
    wg.load([&cost, writer](device::CoreCtx& ctx) -> sim::Op<void> {
      return [](device::CoreCtx& c, CoreCoord w, Cycles& out) -> sim::Op<void> {
        if (c.coord() != w) co_return;
        const Cycles t0 = c.now();
        co_await c.write_u32(c.global({0, 0}, 0x4000), 1);
        out = c.now() - t0;
      }(ctx, writer, cost);
    });
    wg.run();
    return cost;
  };
  host::System a(cfg);
  host::System b(cfg);
  EXPECT_EQ(measure_store(a, {2, 3}), measure_store(b, {3, 3}));
}

TEST(BankConflicts, LocalAccessPenalisedDuringIncomingDma) {
  arch::MachineConfig cfg;
  cfg.model_bank_conflicts = true;
  host::System sys(cfg);
  auto wg = sys.open(0, 0, 1, 2);
  // Core (0,1) DMA-streams 8 KB into core (0,0)'s bank 2 (0x4000-0x5FFF)
  // while core (0,0) repeatedly reads a bank-2 word: those reads must cost
  // more than the same reads against idle banks.
  Cycles busy_cost = 0, idle_cost = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, Cycles& busy, Cycles& idle) -> sim::Op<void> {
      if (c.group_index() == 1) {
        co_await c.dma_set_desc();
        auto d = dma::DmaDescriptor::linear(c.global({0, 0}, 0x4000),
                                            c.my_global(0x4000), 8192);
        co_await c.dma_start(0, d);
        co_await c.dma_wait(0);
      } else {
        co_await c.compute(600);  // let the stream spin up
        Cycles t0 = c.now();
        for (int i = 0; i < 50; ++i) (void)co_await c.read_u32(0x5F00);
        busy = c.now() - t0;
        co_await c.compute(20000);  // stream long gone
        t0 = c.now();
        for (int i = 0; i < 50; ++i) (void)co_await c.read_u32(0x5F00);
        idle = c.now() - t0;
      }
    }(ctx, busy_cost, idle_cost);
  });
  wg.run();
  EXPECT_GT(busy_cost, idle_cost);
  EXPECT_EQ(idle_cost, 50u);  // 1 cycle per idle local load
}

TEST(BankConflicts, OffByDefault) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 2);
  Cycles busy_cost = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, Cycles& busy) -> sim::Op<void> {
      if (c.group_index() == 1) {
        co_await c.dma_set_desc();
        auto d = dma::DmaDescriptor::linear(c.global({0, 0}, 0x4000),
                                            c.my_global(0x4000), 8192);
        co_await c.dma_start(0, d);
        co_await c.dma_wait(0);
      } else {
        co_await c.compute(600);
        const Cycles t0 = c.now();
        for (int i = 0; i < 50; ++i) (void)co_await c.read_u32(0x5F00);
        busy = c.now() - t0;
      }
    }(ctx, busy_cost);
  });
  wg.run();
  EXPECT_EQ(busy_cost, 50u);
}

TEST(BankConflicts, DifferentBankUnaffected) {
  arch::MachineConfig cfg;
  cfg.model_bank_conflicts = true;
  host::System sys(cfg);
  auto wg = sys.open(0, 0, 1, 2);
  Cycles cost = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, Cycles& out) -> sim::Op<void> {
      if (c.group_index() == 1) {
        co_await c.dma_set_desc();
        auto d = dma::DmaDescriptor::linear(c.global({0, 0}, 0x4000),
                                            c.my_global(0x4000), 8192);
        co_await c.dma_start(0, d);
        co_await c.dma_wait(0);
      } else {
        co_await c.compute(600);
        const Cycles t0 = c.now();
        // Bank 1 (0x2000-0x3FFF) is idle; the stream fills bank 2.
        for (int i = 0; i < 50; ++i) (void)co_await c.read_u32(0x2F00);
        out = c.now() - t0;
      }
    }(ctx, cost);
  });
  wg.run();
  EXPECT_EQ(cost, 50u);
}

}  // namespace
