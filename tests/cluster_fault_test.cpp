// Chip-level fault machinery: XMeshBridge edge cases, the ClusterInjector's
// static schedules and notice budgets, PartitionMap health bookkeeping, and
// the failover stack's stale-notice path when a quarantined home comes back.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "arch/timing.hpp"
#include "fault/cluster.hpp"
#include "fault/plan.hpp"
#include "machine/partition.hpp"
#include "noc/xmesh.hpp"
#include "sched/cluster.hpp"

namespace epi {
namespace {

// ---------------------------------------------------------------------------
// XMeshBridge edge cases
// ---------------------------------------------------------------------------

// A zero-payload message (a bare signal; completion notices degenerate to
// this when the payload moves in-band) spends no serialization cycles: the
// delivery is pure flight, but still never undercuts the PDES lookahead.
TEST(XMeshBridge, ZeroPayloadNoticeIsPureFlight) {
  const arch::TimingParams timing{};
  noc::XMeshBridge bridge(timing, 4);
  const sim::Cycles ready = 1'000;
  const sim::Cycles at = bridge.send(/*dst=*/2, /*hops=*/1, /*bytes=*/0, ready);
  EXPECT_EQ(at, ready + bridge.flight(1));
  EXPECT_GE(at, ready + noc::XMeshBridge::min_latency(timing));
  EXPECT_EQ(bridge.messages(), 1u);
  EXPECT_EQ(bridge.bytes_sent(), 0u);
  // Zero bytes leave the egress link free: a payload right behind it does
  // not queue behind the signal.
  const sim::Cycles next =
      bridge.send(/*dst=*/2, /*hops=*/1, /*bytes=*/64, ready);
  EXPECT_EQ(next, at + static_cast<sim::Cycles>(
                           64.0 * timing.xmesh_write_overhead /
                           timing.xmesh_bytes_per_cycle));
}

// The highest chip id of the grid is a valid destination with its own
// egress lane: traffic to chip N-1 never queues behind traffic to chip 0,
// while back-to-back sends to N-1 itself serialize.
TEST(XMeshBridge, BoundaryChipIdHasOwnEgressLane) {
  const arch::TimingParams timing{};
  constexpr unsigned kChips = 4;
  noc::XMeshBridge bridge(timing, kChips);
  const sim::Cycles a = bridge.send(kChips - 1, 2, 512, 0);
  const sim::Cycles b = bridge.send(0, 2, 512, 0);
  EXPECT_EQ(a, b);  // distinct lanes: same ready, same delivery
  const sim::Cycles c = bridge.send(kChips - 1, 2, 512, 0);
  EXPECT_GT(c, a);  // same lane: serializes behind the first message
  EXPECT_EQ(bridge.messages(), 3u);
  EXPECT_EQ(bridge.bytes_sent(), 3u * 512u);
}

// A permanently dead link reports "never" and accounts nothing -- the
// failover layer, not the bridge, decides what happens to the message.
TEST(XMeshBridge, DeadLinkAccountsNothing) {
  const arch::TimingParams timing{};
  noc::XMeshBridge bridge(timing, 2);
  bridge.set_outage([](unsigned, sim::Cycles) { return fault::kNever; });
  EXPECT_EQ(bridge.send(1, 1, 256, 5'000), fault::kNever);
  EXPECT_EQ(bridge.messages(), 0u);
  EXPECT_EQ(bridge.bytes_sent(), 0u);
}

// A transient outage defers serialization until the link clears; traffic
// to an unaffected destination is untouched.
TEST(XMeshBridge, OutageDefersSerializationUntilClear) {
  const arch::TimingParams timing{};
  noc::XMeshBridge bridge(timing, 4);
  const sim::Cycles clear = 40'000;
  bridge.set_outage([clear](unsigned dst, sim::Cycles t) {
    return dst == 3 ? std::max(t, clear) : t;
  });
  const auto ser = static_cast<sim::Cycles>(
      128.0 * timing.xmesh_write_overhead / timing.xmesh_bytes_per_cycle);
  EXPECT_EQ(bridge.send(3, 1, 128, 10'000), clear + ser + bridge.flight(1));
  EXPECT_EQ(bridge.send(1, 1, 128, 10'000), 10'000 + ser + bridge.flight(1));
}

// ---------------------------------------------------------------------------
// ClusterInjector static schedules
// ---------------------------------------------------------------------------

fault::FaultPlan parse_plan(const std::string& text) {
  std::istringstream in(text);
  return fault::parse(in, "test-plan");
}

TEST(ClusterInjector, CrashStallAndFlapSchedules) {
  const fault::FaultPlan plan = parse_plan(
      "seed 4\n"
      "chips 2x2\n"
      "chip-crash chip=0,1 at=400000\n"
      "chip-stall chip=1,0 at=200000 for=100000\n"
      "chip-stall chip=1,0 at=280000 for=100000\n"  // overlaps: chains
      "xmesh from=0,0 to=1,1 at=100000 for=50000 flap=2 period=300000\n"
      "xmesh from=1,1 to=0,0 at=50000 for=0\n");  // for=0 => permanent
  fault::ClusterInjector inj(plan, 2, 2);
  EXPECT_TRUE(inj.armed());
  EXPECT_EQ(inj.chips(), 4u);

  EXPECT_EQ(inj.crash_at(1), 400'000u);
  EXPECT_EQ(inj.crash_at(0), fault::kNever);

  // Host freeze: clear outside windows, chained across the overlap.
  EXPECT_EQ(inj.host_thaw(2, 100'000), 0u);
  EXPECT_EQ(inj.host_thaw(2, 250'000), 380'000u);  // 200k..300k chains to 380k
  EXPECT_EQ(inj.host_thaw(2, 390'000), 0u);
  EXPECT_EQ(inj.next_freeze(2, 0), 200'000u);
  EXPECT_EQ(inj.next_freeze(2, 250'000), 280'000u);
  EXPECT_EQ(inj.next_freeze(2, 300'000), fault::kNever);

  // Flapping directed link 0->3: two windows, one period apart.
  EXPECT_EQ(inj.xmesh_clear(0, 3, 120'000), 150'000u);
  EXPECT_EQ(inj.xmesh_clear(0, 3, 200'000), 200'000u);  // between flaps
  EXPECT_EQ(inj.xmesh_clear(0, 3, 410'000), 450'000u);  // second flap window
  // Permanent outage 3->0; the reverse direction is never affected.
  EXPECT_EQ(inj.xmesh_clear(3, 0, 60'000), fault::kNever);
  EXPECT_EQ(inj.xmesh_clear(3, 0, 10'000), 10'000u);  // before it starts
  EXPECT_EQ(inj.xmesh_clear(0, 1, 60'000), 60'000u);  // undeclared link
}

TEST(ClusterInjector, NoticeBudgetsAreBoundedAndLogged) {
  const fault::FaultPlan plan = parse_plan(
      "seed 9\n"
      "chips 1x2\n"
      "notice-drop chip=0,0 at=10000 for=90000 count=2\n"
      "notice-flip chip=0,1 at=0 for=0 count=1\n");
  fault::ClusterInjector inj(plan, 1, 2);

  EXPECT_FALSE(inj.drop_notice(0, 5'000));   // before the window
  EXPECT_TRUE(inj.drop_notice(0, 20'000));   // budget 1
  EXPECT_TRUE(inj.drop_notice(0, 30'000));   // budget 2
  EXPECT_FALSE(inj.drop_notice(0, 40'000));  // budget spent
  EXPECT_EQ(inj.notices_dropped(0), 2u);
  EXPECT_EQ(inj.injections(0).size(), 2u);

  // Flips corrupt exactly one bit; empty payloads are left alone and do not
  // consume the budget.
  std::string empty;
  EXPECT_FALSE(inj.flip_notice(1, 1'000, empty));
  std::string payload = "job=3 verdict=completed";
  const std::string before = payload;
  EXPECT_TRUE(inj.flip_notice(1, 2'000, payload));
  ASSERT_EQ(payload.size(), before.size());
  unsigned diff_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    unsigned x = static_cast<unsigned char>(payload[i]) ^
                 static_cast<unsigned char>(before[i]);
    while (x != 0) {
      diff_bits += x & 1u;
      x >>= 1u;
    }
  }
  EXPECT_EQ(diff_bits, 1u);
  EXPECT_FALSE(inj.flip_notice(1, 3'000, payload));  // budget spent
  EXPECT_EQ(inj.notices_flipped(1), 1u);
}

TEST(ClusterInjector, ValidatesGridAgainstPlan) {
  const fault::FaultPlan plan = parse_plan(
      "seed 1\n"
      "chips 2x2\n"
      "chip-crash chip=1,1 at=1000\n");
  EXPECT_THROW(fault::ClusterInjector(plan, 1, 2), fault::FaultError);
  EXPECT_THROW(fault::ClusterInjector(plan, 0, 0), fault::FaultError);
  EXPECT_NO_THROW(fault::ClusterInjector(plan, 2, 2));

  // A hand-built event outside the grid (the parser normally rejects this)
  // is still caught at injector construction.
  fault::FaultPlan bad;
  bad.chip_rows = bad.chip_cols = 2;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::ChipCrash;
  e.chip = arch::CoreCoord{3, 0};
  bad.events.push_back(e);
  EXPECT_THROW(fault::ClusterInjector(bad, 2, 2), fault::FaultError);
}

TEST(ClusterInjector, SplitsChipTaggedMachineFaults) {
  const fault::FaultPlan plan = parse_plan(
      "seed 2\n"
      "chips 2x2\n"
      "chip-crash chip=1,1 at=900000\n"
      "kill chip=0,0 core=2,3 at=120000\n"
      "stall chip=0,1 core=1,1 at=50000 for=10000\n");
  fault::ClusterInjector inj(plan, 2, 2);
  EXPECT_TRUE(inj.armed());

  const fault::FaultPlan p0 = inj.machine_plan(0);
  ASSERT_EQ(p0.events.size(), 1u);
  EXPECT_EQ(p0.events[0].kind, fault::FaultKind::KillCore);
  EXPECT_FALSE(p0.events[0].has_chip);  // a plain single-machine event again
  EXPECT_EQ(p0.seed, 2u);
  EXPECT_EQ(inj.machine_plan(1).events.size(), 1u);
  EXPECT_TRUE(inj.machine_plan(2).events.empty());
  EXPECT_TRUE(inj.machine_plan(3).events.empty());

  // Machine-only cluster plans never arm the failover stack.
  const fault::FaultPlan machine_only = parse_plan(
      "seed 2\n"
      "chips 2x2\n"
      "kill chip=0,0 core=2,3 at=120000\n");
  EXPECT_FALSE(fault::ClusterInjector(machine_only, 2, 2).armed());
}

// ---------------------------------------------------------------------------
// Parser negatives: every rejection carries `source:line:`.
// ---------------------------------------------------------------------------

void expect_parse_error(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  try {
    (void)fault::parse(in, "plan.txt");
    FAIL() << "expected FaultError containing '" << needle << "'";
  } catch (const fault::FaultError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("plan.txt:"), std::string::npos) << msg;
    EXPECT_NE(msg.find(needle), std::string::npos) << msg;
  }
}

TEST(ClusterPlanParser, RejectsDuplicateIdsAndBadCoords) {
  expect_parse_error(
      "chips 2x2\n"
      "chip-crash chip=0,0 at=1 id=7\n"
      "chip-stall chip=0,1 at=2 for=3 id=7\n",
      "duplicate fault id");
  expect_parse_error(
      "chips 2x2\n"
      "chip-crash chip=2,0 at=1\n",
      "outside the 2x2 chip grid");
  expect_parse_error(
      "chips 2x2\n"
      "xmesh from=0,0 to=0,2 at=1 for=2\n",
      "outside the 2x2 chip grid");
  expect_parse_error("chip-crash chip=0,0 at=1\n", "chips");
  expect_parse_error(
      "chips 2x2\n"
      "chips 2x2\n",
      "duplicate 'chips'");
}

// ---------------------------------------------------------------------------
// PartitionMap health bookkeeping
// ---------------------------------------------------------------------------

TEST(PartitionHealth, MarksFoldIntoTheMap) {
  machine::PartitionMap part;
  part.chip_rows = 2;
  part.chip_cols = 2;
  EXPECT_TRUE(part.usable(3));  // empty health vector = all healthy
  part.mark(1, machine::ChipHealth::Quarantined);
  part.mark(2, machine::ChipHealth::Dead);
  EXPECT_EQ(part.health_of(0), machine::ChipHealth::Healthy);
  EXPECT_EQ(part.health_of(1), machine::ChipHealth::Quarantined);
  EXPECT_EQ(part.health_of(2), machine::ChipHealth::Dead);
  EXPECT_FALSE(part.usable(1));
  EXPECT_FALSE(part.usable(2));
  EXPECT_TRUE(part.usable(3));
  EXPECT_TRUE(part.contains_chip(1, 1));
  EXPECT_FALSE(part.contains_chip(2, 0));
}

// ---------------------------------------------------------------------------
// Failover end-to-end: a notice that arrives after the origin quarantined
// (and re-homed away from) its sender is logged as stale, never double-
// resolving the job.
// ---------------------------------------------------------------------------

TEST(ClusterFailover, LateNoticeAfterQuarantineIsStale) {
  sched::ClusterConfig cfg;
  cfg.chip_rows = 2;
  cfg.chip_cols = 2;
  cfg.traffic.jobs = 8;
  cfg.traffic.seed = 7;
  cfg.traffic.mean_interarrival = 40'000;
  cfg.remote_frac = 0.6;
  // Tight budgets so the quarantine fires well inside the stall window: the
  // frozen home absorbs forwards, gets struck out and re-homed around, then
  // thaws and completes its copies -- whose notices must land as stale.
  cfg.failover.heartbeat_period = 60'000;
  cfg.failover.miss_budget = 3;
  cfg.failover.forward_timeout = 300'000;
  cfg.failover.forward_backoff = 30'000;
  cfg.cluster_plan = parse_plan(
      "seed 5\n"
      "chips 2x2\n"
      "chip-stall chip=0,1 at=0 for=1500000\n");

  sched::ClusterScheduler cs(cfg);
  cs.run(2);
  EXPECT_TRUE(cs.failover_armed());
  EXPECT_EQ(cs.stats().dead_chips, 0u);  // a stall is not a crash
  EXPECT_GT(cs.stats().reforwarded, 0u);
  EXPECT_GT(cs.stats().quarantines, 0u);

  // Every job resolved exactly once; replayed completions were shed as
  // stale notices or deduped at the home.
  unsigned stale = 0;
  for (unsigned c = 0; c < cs.stats().chips; ++c) {
    for (const auto& rec : cs.chip_sched(c).records()) {
      EXPECT_NE(rec.verdict, sched::Verdict::Pending);
    }
    for (const auto& line : cs.notices(c)) {
      if (line.find("notice-stale") != std::string::npos) ++stale;
    }
  }
  EXPECT_GT(stale + cs.stats().dup_dropped, 0u);
}

// A chip-tagged core kill hangs its workgroup until the watchdog abandons
// the silenced kernels: the frames stay suspended by design, and the
// cluster run must treat them as a resolved fault, not a deadlock.
// (Regression: unfinished() once reported watchdog-abandoned frames at
// global idle and the whole run threw DeadlockError.)
TEST(ClusterFailover, WatchdogAbandonedKernelsAreNotADeadlock) {
  sched::ClusterConfig cfg;
  cfg.chip_rows = 1;
  cfg.chip_cols = 2;
  cfg.traffic.jobs = 12;
  cfg.traffic.seed = 7;
  cfg.traffic.mean_interarrival = 40'000;
  cfg.remote_frac = 0.3;
  cfg.sched.watchdog_cycles = 400'000;
  cfg.cluster_plan = parse_plan(
      "seed 7\n"
      "chips 1x2\n"
      "kill chip=0,0 core=3,2 at=200000\n"
      "chip-stall chip=0,1 at=100000 for=50000\n");

  sched::ClusterScheduler cs(cfg);
  ASSERT_NO_THROW(cs.run(2));
  bool watchdog_fired = false;
  for (unsigned c = 0; c < cs.stats().chips; ++c) {
    for (const auto& r : cs.chip_sched(c).fault_log()) {
      if (r.kind == std::string("watchdog")) watchdog_fired = true;
    }
    for (const auto& rec : cs.chip_sched(c).records()) {
      EXPECT_NE(rec.verdict, sched::Verdict::Pending);
    }
  }
  EXPECT_TRUE(watchdog_fired);
}

}  // namespace
}  // namespace epi
