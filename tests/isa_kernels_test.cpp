// Validation of the reconstructed assembly kernels against both the host
// references (numerics) and the schedule models in core/ (cycle counts).
// This closes the loop: the constants in StencilSchedule / MatmulSchedule
// are not just asserted, they are reproduced by executing the actual
// instruction streams the paper describes.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/matmul_schedule.hpp"
#include "core/stencil_schedule.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "isa/kernels.hpp"
#include "sim/random.hpp"

namespace {

using namespace epi;
using namespace epi::isa;

// ---- stencil stripe -----------------------------------------------------------

struct StencilRun {
  std::vector<float> in;    // (2P+2) x 22
  std::vector<float> out;   // dense 2P x 20 (pad removed)
  ExecStats st;
};

StencilRun run_stripe(unsigned pairs, const util::StencilWeights& w, std::uint64_t seed) {
  const unsigned in_rows = 2 * pairs + 2;
  const std::uint32_t out_offset = in_rows * 22 * 4;
  StencilRun r;
  r.in.resize(static_cast<std::size_t>(in_rows) * 22);
  util::fill_random(r.in, seed);

  std::vector<std::byte> mem(stencil_stripe_memory_bytes(pairs, out_offset));
  std::memcpy(mem.data(), r.in.data(), r.in.size() * 4);

  const Program p = assemble(generate_stencil_stripe(pairs, w, out_offset));
  RegFile regs;
  r.st = execute(p, regs, mem);

  r.out.resize(static_cast<std::size_t>(2 * pairs) * 20);
  std::memcpy(r.out.data(), mem.data() + out_offset + 20, r.out.size() * 4);
  return r;
}

/// Host reference with the kernel's exact tap order (T, L, C, R, B).
std::vector<float> stripe_reference(const std::vector<float>& in, unsigned pairs,
                                    const util::StencilWeights& w) {
  std::vector<float> out(static_cast<std::size_t>(2 * pairs) * 20);
  for (unsigned i = 1; i <= 2 * pairs; ++i) {
    for (unsigned c = 1; c <= 20; ++c) {
      float acc = 0.0f;
      acc += in[(i - 1) * 22 + c] * w.top;
      acc += in[i * 22 + c - 1] * w.left;
      acc += in[i * 22 + c] * w.centre;
      acc += in[i * 22 + c + 1] * w.right;
      acc += in[(i + 1) * 22 + c] * w.bottom;
      out[(i - 1) * 20 + (c - 1)] = acc;
    }
  }
  return out;
}

TEST(StencilAsm, NumericallyExactVsReference) {
  const util::StencilWeights w{0.11f, 0.52f, 0.13f, 0.14f, 0.15f};
  const auto r = run_stripe(4, w, 77);
  const auto ref = stripe_reference(r.in, 4, w);
  ASSERT_EQ(r.out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(r.out[i], ref[i]) << "element " << i;
  }
}

TEST(StencilAsm, RandomWeightSweep) {
  sim::Rng rng(5);
  for (int rep = 0; rep < 5; ++rep) {
    util::StencilWeights w;
    w.top = rng.next_float(-1, 1);
    w.left = rng.next_float(-1, 1);
    w.centre = rng.next_float(-1, 1);
    w.right = rng.next_float(-1, 1);
    w.bottom = rng.next_float(-1, 1);
    const auto r = run_stripe(2, w, 100 + rep);
    const auto ref = stripe_reference(r.in, 2, w);
    ASSERT_EQ(util::max_abs_diff(r.out, ref), 0.0f) << rep;
  }
}

TEST(StencilAsm, TwoHundredFmaddsPerRowPair) {
  const auto r = run_stripe(6, {}, 1);
  // 200 FMADDs per two-row pass (the paper's unrolled loop).
  EXPECT_EQ(r.st.fpu_ops, 6u * 200u);
  EXPECT_EQ(r.st.flops, 6u * 400u);
}

TEST(StencilAsm, SteadyStatePairCostMatchesScheduleModel) {
  // Marginal cost of one additional row pair, measured by execution, must
  // land on the schedule model's 205 cycles (within the odd cycle of
  // issue-alignment slack).
  const auto r4 = run_stripe(4, {}, 1);
  const auto r8 = run_stripe(8, {}, 1);
  const double per_pair = static_cast<double>(r8.st.cycles - r4.st.cycles) / 4.0;
  EXPECT_NEAR(per_pair, static_cast<double>(core::StencilSchedule::kPairCyclesFull), 3.0);
}

TEST(StencilAsm, NoHazardStallsInSteadyState) {
  // The paper's whole register choreography exists to keep the FMADD
  // pipeline full: the reconstructed schedule must be stall-free.
  const auto r = run_stripe(4, {}, 1);
  EXPECT_EQ(r.st.hazard_stalls, 0u);
}

TEST(StencilAsm, EfficiencyMatchesPaperBand) {
  // flops / (2 * cycles) = fraction of the FPU peak; the paper reports
  // 81-95% for full kernels and ~97.8% for the raw inner loop.
  const auto r = run_stripe(10, {}, 1);
  const double frac =
      static_cast<double>(r.st.flops) / (2.0 * static_cast<double>(r.st.cycles));
  EXPECT_GT(frac, 0.95);
  EXPECT_LT(frac, 1.0);
}

// ---- matmul macro ---------------------------------------------------------------

struct MatmulRun {
  std::vector<float> a, b, c;  // 32x32 each; c holds the produced rows
  ExecStats st;
};

MatmulRun run_matmul(unsigned c_rows, std::uint64_t seed) {
  MatmulRun r;
  r.a.resize(32 * 32);
  r.b.resize(32 * 32);
  util::fill_random(r.a, seed);
  util::fill_random(r.b, seed + 1);

  std::vector<std::byte> mem(0x3000);
  std::memcpy(mem.data(), r.a.data(), r.a.size() * 4);
  std::memcpy(mem.data() + 0x1000, r.b.data(), r.b.size() * 4);

  const Program p = assemble(generate_matmul_rows(c_rows));
  RegFile regs;
  r.st = execute(p, regs, mem);

  r.c.resize(32 * 32);
  std::memcpy(r.c.data(), mem.data() + 0x2000, r.c.size() * 4);
  return r;
}

TEST(MatmulAsm, FullProductBitExactVsReference) {
  const auto r = run_matmul(32, 11);
  std::vector<float> ref(32 * 32);
  util::matmul_reference(r.a, r.b, ref, 32, 32, 32);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(r.c[i], ref[i]) << "element " << i;
  }
}

TEST(MatmulAsm, MacroCostsThirtyTwoCycles) {
  // Steady-state marginal cost of one C row = 32 macros of 32 cycles plus
  // the row epilogue; the macro itself must be stall-free at 32.
  const auto r1 = run_matmul(2, 3);
  const auto r2 = run_matmul(6, 3);
  const double per_row = static_cast<double>(r2.st.cycles - r1.st.cycles) / 4.0;
  // 32 macros x 32 cycles = 1024 + row epilogue (16 strd + 32 clears).
  EXPECT_GE(per_row, 1024.0);
  EXPECT_LE(per_row, 1080.0);
  EXPECT_EQ(r2.st.hazard_stalls, r1.st.hazard_stalls);  // none added per row
}

TEST(MatmulAsm, RowCostMatchesScheduleModel) {
  const auto r1 = run_matmul(2, 3);
  const auto r2 = run_matmul(6, 3);
  const double per_row = static_cast<double>(r2.st.cycles - r1.st.cycles) / 4.0;
  // The schedule model charges macro_cycles(32)=32 per macro plus
  // row_overhead(32)=43: 1067 cycles per row.
  const double model = 32.0 * core::MatmulSchedule::macro_cycles(32) +
                       static_cast<double>(core::MatmulSchedule::row_overhead(32));
  EXPECT_NEAR(per_row, model, model * 0.02);
}

TEST(MatmulAsm, EfficiencyMatchesTableFour) {
  // Table IV: 32x32 runs at 95.9% of peak. The executed kernel, including
  // prologue and epilogues, must land in the same band.
  const auto r = run_matmul(32, 7);
  const double frac =
      static_cast<double>(r.st.flops) / (2.0 * static_cast<double>(r.st.cycles));
  EXPECT_GT(frac, 0.93);
  EXPECT_LT(frac, 0.985);
}

}  // namespace
