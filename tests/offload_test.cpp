// Tests for the offload layer (the paper's "familiar programming models"
// future work): buffer striping, parallel_for semantics and timing, and
// the mesh combining-tree reduction.

#include <gtest/gtest.h>

#include <numeric>

#include "offload/queue.hpp"
#include "sim/random.hpp"
#include "util/reference.hpp"

namespace {

using namespace epi;
using offload::Buffer;
using offload::Queue;

TEST(OffloadQueue, RejectsOversizedPlacement) {
  host::System sys;
  EXPECT_THROW((void)Queue(sys, 9, 1), std::out_of_range);
  EXPECT_THROW((void)Queue(sys, 1, 0), std::out_of_range);
}

TEST(OffloadBuffer, WriteReadRoundTrip) {
  host::System sys;
  Queue q(sys, 2, 2);
  auto b = q.alloc(1000);  // 250 per core
  EXPECT_EQ(b.stripe(), 250u);
  std::vector<float> data(1000);
  util::fill_random(data, 1);
  q.write(b, data);
  std::vector<float> back(1000);
  q.read(b, back);
  EXPECT_EQ(util::max_abs_diff(data, back), 0.0f);
}

TEST(OffloadBuffer, RaggedTailHandled) {
  host::System sys;
  Queue q(sys, 2, 2);
  auto b = q.alloc(10);  // stripe 3: cores hold 3,3,3,1
  std::vector<float> data(10);
  std::iota(data.begin(), data.end(), 1.0f);
  q.write(b, data);
  std::vector<float> back(10);
  q.read(b, back);
  EXPECT_EQ(data, back);
}

TEST(OffloadBuffer, HeapExhaustionThrows) {
  host::System sys;
  Queue q(sys, 1, 1);
  (void)q.alloc(3000);  // 12 KB of the ~14 KB heap
  EXPECT_THROW((void)q.alloc(1000), std::bad_alloc);
  q.reset();
  EXPECT_NO_THROW((void)q.alloc(3000));
}

TEST(OffloadParallelFor, SaxpyAcrossCores) {
  host::System sys;
  Queue q(sys, 4, 4);
  constexpr std::size_t n = 4096;
  auto x = q.alloc(n);
  auto y = q.alloc(n);
  std::vector<float> xs(n), ys(n);
  util::fill_random(xs, 2);
  util::fill_random(ys, 3);
  q.write(x, xs);
  q.write(y, ys);

  const float a = 1.5f;
  q.parallel_for(
      n, 1.0,
      [a](std::size_t, std::size_t count, std::span<std::span<float>> c) {
        for (std::size_t i = 0; i < count; ++i) c[1][i] = a * c[0][i] + c[1][i];
      },
      {&x, &y});

  std::vector<float> out(n);
  q.read(y, out);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], a * xs[i] + ys[i]) << i;
  }
}

TEST(OffloadParallelFor, GlobalIndexVisibleToBody) {
  host::System sys;
  Queue q(sys, 2, 2);
  constexpr std::size_t n = 64;
  auto b = q.alloc(n);
  q.parallel_for(
      n, 1.0,
      [](std::size_t first, std::size_t count, std::span<std::span<float>> c) {
        for (std::size_t i = 0; i < count; ++i) {
          c[0][i] = static_cast<float>(first + i);
        }
      },
      {&b});
  std::vector<float> out(n);
  q.read(b, out);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], static_cast<float>(i));
}

TEST(OffloadParallelFor, TimeScalesInverselyWithCores) {
  constexpr std::size_t n = 8192;
  auto time_on = [&](unsigned edge) {
    host::System sys;
    Queue q(sys, edge, edge);
    auto b = q.alloc(n);
    return q.parallel_for(
        n, 4.0, [](std::size_t, std::size_t, std::span<std::span<float>>) {}, {&b});
  };
  // (edge 1 cannot hold 32 KB of stripe; compare 2x2 against 8x8.)
  const auto t2 = time_on(2);
  const auto t8 = time_on(8);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t8), 16.0, 0.5);
}

TEST(OffloadParallelFor, BufferTooSmallThrows) {
  host::System sys;
  Queue q(sys, 2, 2);
  auto b = q.alloc(16);
  EXPECT_THROW(q.parallel_for(
                   32, 1.0, [](std::size_t, std::size_t, std::span<std::span<float>>) {},
                   {&b}),
               std::invalid_argument);
}

class OffloadReduceShapes : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {
};

TEST_P(OffloadReduceShapes, SumMatchesHost) {
  const auto [rows, cols] = GetParam();
  host::System sys;
  Queue q(sys, rows, cols);
  constexpr std::size_t n = 3000;
  auto b = q.alloc(n);
  std::vector<float> data(n);
  // Integers keep float addition associative, so any combine order matches.
  sim::Rng rng(9);
  for (auto& v : data) v = static_cast<float>(rng.next_below(100));
  q.write(b, data);
  const float host_sum = std::accumulate(data.begin(), data.end(), 0.0f);
  const float dev_sum =
      q.reduce(b, n, 0.0f, [](float a, float x) { return a + x; }, 1.0);
  EXPECT_EQ(dev_sum, host_sum);
}

INSTANTIATE_TEST_SUITE_P(Groups, OffloadReduceShapes,
                         ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 2u),
                                           std::make_pair(1u, 3u), std::make_pair(2u, 2u),
                                           std::make_pair(3u, 3u), std::make_pair(4u, 4u),
                                           std::make_pair(8u, 8u)));

TEST(OffloadReduce, MaxReduction) {
  host::System sys;
  Queue q(sys, 4, 4);
  constexpr std::size_t n = 2048;
  auto b = q.alloc(n);
  std::vector<float> data(n);
  util::fill_random(data, 17);
  data[777] = 9.5f;  // clear maximum
  q.write(b, data);
  const float m = q.reduce(
      b, n, -1e30f, [](float a, float x) { return a > x ? a : x; }, 1.0);
  EXPECT_EQ(m, 9.5f);
}

TEST(OffloadReduce, TreeBeatsSerialGather) {
  // The combining tree's depth is log2(cores); device time for the combine
  // phase must grow far slower than the core count.
  constexpr std::size_t n = 64;  // one element per core at 8x8
  auto combine_time = [&](unsigned edge) {
    host::System sys;
    Queue q(sys, edge, edge);
    auto b = q.alloc(n);
    std::vector<float> ones(n, 1.0f);
    q.write(b, ones);
    sim::Cycles cycles = 0;
    (void)q.reduce(b, n, 0.0f, [](float a, float x) { return a + x; }, 1.0, &cycles);
    return cycles;
  };
  const auto t2 = combine_time(2);   // depth 2
  const auto t8 = combine_time(8);   // depth 6
  EXPECT_LT(static_cast<double>(t8), 4.0 * static_cast<double>(t2));
}

TEST(OffloadReduce, RepeatedReductionsOnSameQueue) {
  host::System sys;
  Queue q(sys, 2, 2);
  auto b = q.alloc(100);
  std::vector<float> data(100, 2.0f);
  q.write(b, data);
  for (int rep = 0; rep < 3; ++rep) {
    const float s = q.reduce(b, 100, 0.0f, [](float a, float x) { return a + x; }, 1.0);
    EXPECT_EQ(s, 200.0f) << rep;
  }
}

}  // namespace
