// Unit tests for scratchpad, external memory, address resolution and the
// watch mechanism.

#include <gtest/gtest.h>

#include <cstring>

#include "mem/memory_system.hpp"
#include "sim/task.hpp"

namespace {

using namespace epi;
using arch::Addr;
using arch::CoreCoord;

TEST(LocalMemory, ReadWriteRoundTrip) {
  mem::LocalMemory lm;
  const std::uint32_t v = 0xDEADBEEF;
  lm.write(0x100, std::as_bytes(std::span<const std::uint32_t, 1>(&v, 1)));
  std::uint32_t out = 0;
  lm.read(0x100, std::as_writable_bytes(std::span<std::uint32_t, 1>(&out, 1)));
  EXPECT_EQ(out, v);
}

TEST(LocalMemory, OutOfRangeThrows) {
  mem::LocalMemory lm;
  EXPECT_THROW((void)lm.span(32 * 1024, 1), std::out_of_range);
  EXPECT_THROW((void)lm.span(32 * 1024 - 2, 4), std::out_of_range);
  EXPECT_NO_THROW((void)lm.span(32 * 1024 - 4, 4));
  // Offset+size overflow must not wrap.
  EXPECT_THROW((void)lm.span(0x7FFF, ~std::size_t{0}), std::out_of_range);
}

TEST(LocalMemory, BankOccupancyPenalty) {
  mem::LocalMemory lm;
  lm.occupy_banks(0x2000, 0x100, 500);
  EXPECT_EQ(lm.bank_conflict_penalty(0x2010, 100), 1u);   // same bank, busy
  EXPECT_EQ(lm.bank_conflict_penalty(0x2010, 600), 0u);   // busy window over
  EXPECT_EQ(lm.bank_conflict_penalty(0x0010, 100), 0u);   // different bank
}

class MemorySystemTest : public ::testing::Test {
protected:
  sim::Engine engine;
  mem::MemorySystem mem{arch::MeshDims{4, 4}, engine};
};

TEST_F(MemorySystemTest, LocalAliasResolvesToIssuer) {
  const CoreCoord a{1, 2};
  const CoreCoord b{2, 1};
  mem.write_value<std::uint32_t>(0x4000, 111, a);
  mem.write_value<std::uint32_t>(0x4000, 222, b);
  EXPECT_EQ(mem.read_value<std::uint32_t>(0x4000, a), 111u);
  EXPECT_EQ(mem.read_value<std::uint32_t>(0x4000, b), 222u);
}

TEST_F(MemorySystemTest, GlobalAddressHitsRemoteCore) {
  const CoreCoord writer{0, 0};
  const CoreCoord target{3, 3};
  const Addr remote = mem.map().global(target, 0x1000);
  mem.write_value<float>(remote, 2.5f, writer);
  // The target sees the value through its local alias.
  EXPECT_EQ(mem.read_value<float>(0x1000, target), 2.5f);
}

TEST_F(MemorySystemTest, ExternalWindowSharedByAll) {
  const Addr ext = arch::AddressMap::kExternalBase + 0x100;
  mem.write_value<std::uint64_t>(ext, 0x0123456789ABCDEFull, {0, 0});
  EXPECT_EQ(mem.read_value<std::uint64_t>(ext, {3, 2}), 0x0123456789ABCDEFull);
}

TEST_F(MemorySystemTest, UnmappedAddressThrows) {
  EXPECT_THROW(mem.write_value<std::uint32_t>(0x10000000, 0, {0, 0}), std::out_of_range);
  // Core id outside the 4x4 mesh:
  EXPECT_THROW(mem.write_value<std::uint32_t>(0x9CF00000, 0, {0, 0}), std::out_of_range);
}

TEST_F(MemorySystemTest, CopyMovesBytesBetweenCores) {
  const CoreCoord src{0, 1};
  const CoreCoord dst{1, 0};
  std::vector<float> data{1.0f, 2.0f, 3.0f};
  mem.write_bytes(mem.map().global(src, 0x2000), std::as_bytes(std::span(data)), src);
  mem.copy(mem.map().global(dst, 0x3000), mem.map().global(src, 0x2000),
           data.size() * sizeof(float), src);
  std::vector<float> out(3);
  mem.read_bytes(mem.map().global(dst, 0x3000), std::as_writable_bytes(std::span(out)), dst);
  EXPECT_EQ(out, data);
}

TEST_F(MemorySystemTest, WatchWakesOnRemoteWrite) {
  const CoreCoord waiter{1, 1};
  const CoreCoord writer{0, 0};
  const Addr flag = mem.map().global(waiter, 0x2F00);
  mem.write_value<std::uint32_t>(flag, 0, writer);

  sim::Cycles woke_at = 0;
  sim::spawn(engine, [](mem::MemorySystem& m, sim::Engine& e, Addr f, CoreCoord w,
                        sim::Cycles& t) -> sim::Op<void> {
    co_await m.wait_u32(f, w, [](std::uint32_t v) { return v >= 3; });
    t = e.now();
  }(mem, engine, flag, waiter, woke_at));

  // Writes below the threshold must not release the waiter.
  engine.call_at(100, [&] { mem.write_value<std::uint32_t>(flag, 2, writer); });
  engine.call_at(200, [&] { mem.write_value<std::uint32_t>(flag, 3, writer); });
  engine.run();
  EXPECT_GE(woke_at, 200u);
  EXPECT_LE(woke_at, 205u);
  EXPECT_EQ(mem.active_watches(), 0u);
}

TEST_F(MemorySystemTest, WatchOnLocalAliasWokenByGlobalWrite) {
  const CoreCoord waiter{2, 2};
  const CoreCoord writer{0, 3};
  sim::Cycles woke_at = 0;
  // Waiter spins on its *local alias* address; writer stores to the global
  // form. The canonicalisation must connect them.
  sim::spawn(engine, [](mem::MemorySystem& m, sim::Engine& e, CoreCoord w,
                        sim::Cycles& t) -> sim::Op<void> {
    co_await m.wait_u32(0x2F00, w, [](std::uint32_t v) { return v == 7; });
    t = e.now();
  }(mem, engine, waiter, woke_at));
  engine.call_at(50, [&] {
    mem.write_value<std::uint32_t>(mem.map().global(waiter, 0x2F00), 7, writer);
  });
  engine.run();
  EXPECT_GE(woke_at, 50u);
  EXPECT_LE(woke_at, 55u);
}

TEST_F(MemorySystemTest, PredicateAlreadyTrueDoesNotBlock) {
  const CoreCoord c{0, 0};
  mem.write_value<std::uint32_t>(0x2F00, 9, c);
  bool done = false;
  sim::spawn(engine, [](mem::MemorySystem& m, CoreCoord cc, bool& d) -> sim::Op<void> {
    co_await m.wait_u32(0x2F00, cc, [](std::uint32_t v) { return v == 9; });
    d = true;
  }(mem, c, done));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.now(), 0u);
}

TEST_F(MemorySystemTest, MultipleWatchersOnSameAddress) {
  const CoreCoord c{1, 3};
  const Addr flag = mem.map().global(c, 0x2F10);
  mem.write_value<std::uint32_t>(flag, 0, c);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    sim::spawn(engine, [](mem::MemorySystem& m, Addr f, CoreCoord cc, int& n) -> sim::Op<void> {
      co_await m.wait_u32(f, cc, [](std::uint32_t v) { return v != 0; });
      ++n;
    }(mem, flag, c, woke));
  }
  engine.call_at(10, [&] { mem.write_value<std::uint32_t>(flag, 1, c); });
  engine.run();
  EXPECT_EQ(woke, 5);
}

TEST_F(MemorySystemTest, ExternalSpanBoundsChecked) {
  EXPECT_NO_THROW((void)mem.external_span(0, 16));
  EXPECT_THROW((void)mem.external_span(arch::AddressMap::kExternalBytes, 1),
               std::out_of_range);
  EXPECT_THROW((void)mem.external_span(arch::AddressMap::kExternalBytes - 4, 8),
               std::out_of_range);
}

// ---- resolve() edge cases ------------------------------------------------

TEST_F(MemorySystemTest, ResolveZeroLengthAtBoundaries) {
  const CoreCoord c{0, 0};
  // A zero-length span exactly at the end of a scratchpad (or the external
  // window) is addressable emptiness, not an overflow.
  EXPECT_NO_THROW((void)mem.resolve(arch::AddressMap::kLocalMemBytes, 0, c));
  EXPECT_EQ(mem.resolve(arch::AddressMap::kLocalMemBytes, 0, c).size(), 0u);
  const Addr ext_end = mem.map().external_base + arch::AddressMap::kExternalBytes;
  EXPECT_NO_THROW((void)mem.resolve(ext_end - 4, 4, c));
  EXPECT_THROW((void)mem.resolve(ext_end - 4, 8, c), std::out_of_range);
}

TEST_F(MemorySystemTest, ResolveScratchpadBoundary) {
  const CoreCoord c{2, 3};
  const Addr base = mem.map().global(c, 0);
  constexpr Addr kSize = arch::AddressMap::kLocalMemBytes;
  EXPECT_NO_THROW((void)mem.resolve(base + kSize - 4, 4, c));
  EXPECT_THROW((void)mem.resolve(base + kSize - 2, 4, c), std::out_of_range);
  // Local-alias form of the same overflow.
  EXPECT_THROW((void)mem.resolve(kSize - 2, 4, c), std::out_of_range);
}

TEST_F(MemorySystemTest, ResolveExternalWindowBoundary) {
  const CoreCoord c{0, 0};
  const Addr base = mem.map().external_base;
  constexpr Addr kSize = arch::AddressMap::kExternalBytes;
  EXPECT_NO_THROW((void)mem.resolve(base, 4, c));
  EXPECT_NO_THROW((void)mem.resolve(base + kSize - 4, 4, c));
  // One past the window is not external any more: unmapped.
  EXPECT_THROW((void)mem.resolve(base + kSize, 4, c), std::out_of_range);
}

TEST_F(MemorySystemTest, UnmappedAddressNamesTheAddress) {
  const CoreCoord c{0, 0};
  try {
    (void)mem.resolve(0x40000000, 4, c);  // between core windows and DRAM
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unmapped global address 0x"), std::string::npos) << what;
    EXPECT_NE(what.find("40000000"), std::string::npos) << what;
  }
}

}  // namespace
