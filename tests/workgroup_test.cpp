// The static half of epi-verify: whole-workgroup race/deadlock analysis
// with no simulation. Each seeded-defect fixture must trip exactly its
// pass; the clean twins and the built-in paper kernels must verify clean;
// and the Listing-1/2 race verdict is cross-checked against the runtime
// shadow-memory sanitizer on the same protocol shape.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "isa/kernels.hpp"
#include "lint/sanitizer.hpp"
#include "lint/wg_fixtures.hpp"
#include "lint/workgroup.hpp"

namespace {

using namespace epi;
using lint::WgFinding;
using lint::WorkgroupSpec;
namespace fx = lint::fixtures;

std::string dump(const std::vector<WgFinding>& fs) {
  std::string s;
  for (const auto& f : fs) s += f.format() + "\n";
  return s;
}

std::size_t count_pass(const std::vector<WgFinding>& fs, const char* pass) {
  std::size_t n = 0;
  for (const auto& f : fs) {
    if (f.finding.pass == pass) ++n;
  }
  return n;
}

// ---- the five seeded defects: each trips exactly its pass -----------------

TEST(Workgroup, Listing12RaceIsCaughtStatically) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::listing12(/*racy=*/true)));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-race");
  EXPECT_EQ(fs[0].finding.severity, lint::Severity::Error);
  EXPECT_EQ(fs[0].core, 1u);  // reported at the consumer's read
  EXPECT_NE(fs[0].finding.message.find("read-after-remote-write"), std::string::npos)
      << fs[0].finding.message;
}

TEST(Workgroup, Listing12WithFlagWaitIsClean) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::listing12(/*racy=*/false)));
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Workgroup, BarrierCountMismatchIsADeadlock) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::barrier_mismatch()));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-barrier-mismatch");
  EXPECT_EQ(fs[0].finding.severity, lint::Severity::Error);
}

TEST(Workgroup, CircularFlagWaitChainIsADeadlock) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::circular_wait()));
  ASSERT_EQ(fs.size(), 2u) << dump(fs);  // both cores are stuck
  EXPECT_EQ(count_pass(fs, "wg-flag-cycle"), 2u) << dump(fs);
}

TEST(Workgroup, OutOfWorkgroupRemoteWrite) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::stray_remote_write()));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-out-of-group");
  EXPECT_EQ(fs[0].core, 0u);
}

TEST(Workgroup, DmaDescriptorOverflowingScratchpad) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::bad_dma()));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-dma");
  EXPECT_EQ(fs[0].finding.line, 1u);  // the .dma directive's source line
}

// ---- shmem put_with_signal: DMA payloads join the HB analysis -------------

TEST(Workgroup, ShmemPutWithSignalVerifiesClean) {
  const auto fs =
      lint::verify_workgroup(fx::to_spec(fx::shmem_put_signal(/*racy=*/false)));
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Workgroup, ShmemGetBeforeSignalTripsExactlyWgRace) {
  const auto fs =
      lint::verify_workgroup(fx::to_spec(fx::shmem_put_signal(/*racy=*/true)));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-race");
  EXPECT_EQ(fs[0].finding.severity, lint::Severity::Error);
  EXPECT_EQ(fs[0].core, 1u);  // at the consumer's premature read
}

// ---- further defect shapes ------------------------------------------------

TEST(Workgroup, WaitOnFlagNobodyWrites) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::wait_without_writer()));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-flag-deadlock");
}

TEST(Workgroup, HostPreloadedFlagSatisfiesTheWait) {
  auto fixture = fx::wait_without_writer();
  // The host sets the flag before launch: core (0,0)'s word 0x6000.
  fixture.host_preloaded.emplace_back(0x80806000u, 0x80806004u);
  const auto fs = lint::verify_workgroup(fx::to_spec(fixture));
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Workgroup, UnmappedCoreIdIsAnError) {
  fx::WgFixture f;
  f.rows = 1;
  f.cols = 2;
  // Core id 1 decodes to mesh row 0 < base_row 32: no such core.
  f.programs.emplace_back("bad-id",
                          "mov r0, #0x00100000\n"
                          "mov r1, #1\n"
                          "str r1, [r0, #0]\n"
                          "halt\n");
  f.programs.emplace_back("idle", "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-unmapped-core");
}

TEST(Workgroup, RemoteAccessPastTargetScratchpad) {
  fx::WgFixture f;
  f.rows = 1;
  f.cols = 2;
  f.programs.emplace_back("overrun",
                          "mov r0, #0x80907FFE\n"
                          "mov r1, #1\n"
                          "str r1, [r0, #0]\n"
                          "halt\n");
  f.programs.emplace_back("idle", "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-remote-extent");
}

TEST(Workgroup, RemoteBankStraddleIsAWarning) {
  fx::WgFixture f;
  f.rows = 1;
  f.cols = 2;
  // 0x1FFE + 4 bytes crosses the 8 KB bank 0 -> bank 1 boundary of the
  // peer's scratchpad. The store itself is otherwise legal, and the
  // peer never reads it, so the straddle warning is the only finding.
  f.programs.emplace_back("straddle",
                          "mov r0, #0x80901FFE\n"
                          "mov r1, #1\n"
                          "str r1, [r0, #0]\n"
                          "halt\n");
  f.programs.emplace_back("idle", "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-remote-bank");
  EXPECT_EQ(fs[0].finding.severity, lint::Severity::Warning);
  EXPECT_FALSE(lint::any_errors(fs));
}

// ---- clean protocols ------------------------------------------------------

TEST(Workgroup, BarrierOrderedExchangeIsClean) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::barrier_exchange()));
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Workgroup, MutexGuardedCounterIsClean) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::mutex_counter()));
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Workgroup, CoreIdAddressCompositionResolves) {
  // SPMD: every core composes its own global window via coreid << 20 and
  // stores there -- distinct targets per core, no races, clean anywhere
  // on the mesh (placement-independent by construction).
  fx::WgFixture f;
  f.rows = 2;
  f.cols = 2;
  f.programs.emplace_back("spmd-self-store",
                          "coreid r0\n"
                          "lsl r0, r0, #20\n"
                          "mov r1, #0x4000\n"
                          "add r1, r0, r1\n"
                          "mov r2, #5\n"
                          "str r2, [r1, #0]\n"
                          "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  EXPECT_TRUE(fs.empty()) << dump(fs);

  // And the same group anchored elsewhere on the mesh stays clean.
  auto spec = fx::to_spec(f);
  spec.origin = {3, 4};
  const auto fs2 = lint::verify_workgroup(spec);
  EXPECT_TRUE(fs2.empty()) << dump(fs2);
}

TEST(Workgroup, CoreIdCompositionIntoPeerIsRaceChecked) {
  // The same coreid composition targeting a *fixed* peer: core (0,0)
  // writes into core (0,1) with no synchronisation while (0,1) reads the
  // word -- the verifier must still see through the register arithmetic.
  fx::WgFixture f;
  f.rows = 1;
  f.cols = 2;
  f.programs.emplace_back("writer",
                          "mov r0, #0x80904000\n"
                          "mov r1, #9\n"
                          "str r1, [r0, #0]\n"
                          "halt\n");
  f.programs.emplace_back("reader",
                          "coreid r0\n"
                          "lsl r0, r0, #20\n"
                          "mov r1, #0x4000\n"
                          "add r1, r0, r1\n"
                          "ldr r2, [r1, #0]\n"
                          "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-race");
}

TEST(Workgroup, BuiltinPaperKernelsVerifyCleanAsAGroup) {
  const std::string stencil =
      isa::generate_stencil_stripe(4, util::StencilWeights{}, 880);
  const std::string matmul = isa::generate_matmul_rows(32);
  for (const auto* src : {&stencil, &matmul}) {
    const auto spec = lint::assemble_workgroup(2, 2, {{"builtin", *src}});
    const auto fs = lint::verify_workgroup(spec);
    EXPECT_TRUE(fs.empty()) << dump(fs);
  }
}

// ---- strided remote walks -------------------------------------------------

TEST(Workgroup, StridedRemoteWalkPastScratchpadIsAnError) {
  // A counted postmodify loop streaming into the peer: 64 doublewords
  // from 0x7F00 walk to 0x8100, past the 32 KB scratchpad end.
  fx::WgFixture f;
  f.rows = 1;
  f.cols = 2;
  f.programs.emplace_back("stream-overrun",
                          "mov r0, #0x80907F00\n"
                          "mov r2, #0\n"
                          "mov r3, #0\n"
                          "mov r5, #64\n"
                          "loop:\n"
                          "strd r2, [r0], #8\n"
                          "sub r5, r5, #1\n"
                          "bne loop\n"
                          "halt\n");
  f.programs.emplace_back("idle", "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-remote-extent");
}

TEST(Workgroup, StridedRemoteStreamRacesWithUnsynchronisedReader) {
  fx::WgFixture f;
  f.rows = 1;
  f.cols = 2;
  f.programs.emplace_back("streamer",
                          "mov r0, #0x80904000\n"
                          "mov r2, #1\n"
                          "mov r5, #16\n"
                          "loop:\n"
                          "str r2, [r0], #4\n"
                          "sub r5, r5, #1\n"
                          "bne loop\n"
                          "halt\n");
  f.programs.emplace_back("reader",
                          "mov r0, #0x4020\n"  // inside the streamed range
                          "ldr r1, [r0, #0]\n"
                          "halt\n");
  const auto fs = lint::verify_workgroup(fx::to_spec(f));
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].finding.pass, "wg-race");
}

// ---- spec validation and determinism --------------------------------------

TEST(Workgroup, MalformedSpecsThrow) {
  fx::WgFixture f;
  f.rows = 2;
  f.cols = 2;
  f.programs.emplace_back("a", "halt\n");
  f.programs.emplace_back("b", "halt\n");  // 2 programs for a 2x2 group
  EXPECT_THROW((void)fx::to_spec(f), std::invalid_argument);

  auto spec = fx::to_spec(fx::listing12(false));
  spec.origin = {7, 7};  // 1x2 group cannot fit at the mesh corner
  EXPECT_THROW((void)lint::verify_workgroup(spec), std::invalid_argument);
}

TEST(Workgroup, VerdictIsDeterministic) {
  const auto a = lint::verify_workgroup(fx::to_spec(fx::listing12(true)));
  const auto b = lint::verify_workgroup(fx::to_spec(fx::listing12(true)));
  EXPECT_EQ(dump(a), dump(b));
  const auto c = lint::verify_workgroup(fx::to_spec(fx::circular_wait()));
  const auto d = lint::verify_workgroup(fx::to_spec(fx::circular_wait()));
  EXPECT_EQ(dump(c), dump(d));
}

TEST(Workgroup, FindingFormatNamesTheCore) {
  const auto fs = lint::verify_workgroup(fx::to_spec(fx::listing12(true)));
  ASSERT_EQ(fs.size(), 1u);
  const std::string line = fs[0].format();
  EXPECT_NE(line.find("consumer[core 0.1]:"), std::string::npos) << line;
  EXPECT_NE(line.find("error:"), std::string::npos) << line;
  EXPECT_NE(line.find("[wg-race]"), std::string::npos) << line;
}

// ---- cross-check against the runtime sanitizer ----------------------------

/// The same Listing-1/2 protocol as the static fixture, executed on the
/// simulator with the shadow-memory sanitizer attached (the dynamic
/// detector from PR 1). Static and dynamic verdicts must agree.
std::size_t dynamic_race_count(bool consumer_waits) {
  constexpr arch::Addr kData = 0x4000, kFlag = 0x5000;
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 2);
  wg.load([consumer_waits](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, bool waits) -> sim::Op<void> {
      if (c.group_index() == 0) {
        const arch::CoreCoord peer{0, 1};
        co_await c.write_u32(c.global(peer, kData), 42);
        co_await c.write_u32(c.global(peer, kFlag), 1);
      } else {
        co_await c.compute(10000);  // let the store land: race, not uninit
        if (waits) co_await c.wait_u32_eq(c.my_global(kFlag), 1);
        (void)co_await c.read_u32(c.my_global(kData));
      }
    }(ctx, consumer_waits);
  });
  wg.run();
  std::size_t races = 0;
  for (const auto& f : san.findings()) {
    if (f.pass == "race") ++races;
  }
  return races;
}

TEST(Workgroup, StaticVerdictMatchesRuntimeSanitizer) {
  const auto racy = lint::verify_workgroup(fx::to_spec(fx::listing12(true)));
  const auto clean = lint::verify_workgroup(fx::to_spec(fx::listing12(false)));
  EXPECT_EQ(count_pass(racy, "wg-race"), 1u) << dump(racy);
  EXPECT_TRUE(clean.empty()) << dump(clean);
  // The dynamic detector agrees on the same protocol, but needed a full
  // simulation to say so.
  EXPECT_EQ(dynamic_race_count(/*consumer_waits=*/false), 1u);
  EXPECT_EQ(dynamic_race_count(/*consumer_waits=*/true), 0u);
}

}  // namespace
