// The runtime half of epi-lint: shadow-memory sanitizer over the
// MemorySystem. The defect fixtures reproduce the paper's Listing-1/2
// hazards -- consuming a neighbour's data without waiting on its flag --
// and the clean fixtures show that the idiomatic synchronisation patterns
// (flag spin, barrier, mutex, host preload) produce no findings.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "lint/sanitizer.hpp"

namespace {

using namespace epi;
using arch::Addr;
using arch::CoreCoord;

constexpr Addr kData = 0x4000;  // scratch offset well clear of the runtime area
constexpr Addr kFlag = 0x5000;

std::string dump(const lint::MemSanitizer& san) {
  std::string s;
  for (const auto& f : san.findings()) s += f.format("<run>") + "\n";
  return s;
}

TEST(Sanitizer, FlagsUninitializedRead) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 1);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      (void)co_await c.read_u32(c.my_global(kData));  // nothing ever wrote it
    }(ctx);
  });
  wg.run();
  EXPECT_EQ(san.count("uninit-read"), 1u) << dump(san);
  EXPECT_EQ(san.count("race"), 0u) << dump(san);
}

TEST(Sanitizer, HostPreloadIsInitialization) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 1);
  const std::uint32_t seed = 0xC0FFEEu;
  sys.write(sys.machine().mem().map().global({0, 0}, kData),
            std::as_bytes(std::span<const std::uint32_t, 1>(&seed, 1)));
  std::uint32_t got = 0;
  wg.load([&got](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::uint32_t& out) -> sim::Op<void> {
      out = co_await c.read_u32(c.my_global(kData));
    }(ctx, got);
  });
  wg.run();
  EXPECT_EQ(got, seed);
  EXPECT_TRUE(san.findings().empty()) << dump(san);
}

/// Listing-1/2 shape: core (0,0) pushes data into core (0,1)'s scratchpad,
/// then raises a flag there. The consumer either honours the flag (clean)
/// or reads straight away (race). Returns the findings and the value read.
std::vector<lint::Finding> producer_consumer(bool consumer_waits,
                                             std::uint32_t& value_out) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 2);
  wg.load([consumer_waits, &value_out](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, bool waits, std::uint32_t& out) -> sim::Op<void> {
      if (c.group_index() == 0) {  // producer
        const CoreCoord peer{0, 1};
        co_await c.write_u32(c.global(peer, kData), 42);
        co_await c.write_u32(c.global(peer, kFlag), 1);
      } else {  // consumer
        // Make sure the producer's store has landed either way, so the
        // defective variant is a *race*, not an uninitialised read.
        co_await c.compute(10000);
        if (waits) co_await c.wait_u32_eq(c.my_global(kFlag), 1);
        out = co_await c.read_u32(c.my_global(kData));
      }
    }(ctx, consumer_waits, value_out);
  });
  wg.run();
  return san.findings();
}

std::size_t count_pass(const std::vector<lint::Finding>& fs, const char* pass) {
  std::size_t n = 0;
  for (const auto& f : fs) {
    if (f.pass == pass) ++n;
  }
  return n;
}

TEST(Sanitizer, UnsynchronizedRemoteReadIsARace) {
  std::uint32_t v = 0;
  const auto fs = producer_consumer(/*consumer_waits=*/false, v);
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(count_pass(fs, "race"), 1u);
  EXPECT_EQ(count_pass(fs, "uninit-read"), 0u);
}

TEST(Sanitizer, FlagWaitOrdersTheRead) {
  std::uint32_t v = 0;
  const auto fs = producer_consumer(/*consumer_waits=*/true, v);
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(fs.empty());
}

TEST(Sanitizer, BarrierSynchronisesTheGroup) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 2, 2);
  std::vector<std::uint32_t> got(4, 0);
  wg.load([&got](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::vector<std::uint32_t>& out) -> sim::Op<void> {
      // All-to-one: everyone deposits into the root, root reads after the
      // barrier.
      const CoreCoord root{0, 0};
      co_await c.write_u32(c.global(root, kData + 4 * c.group_index()),
                           100 + c.group_index());
      co_await c.barrier();
      if (c.group_index() == 0) {
        for (unsigned i = 0; i < 4; ++i) {
          out[i] = co_await c.read_u32(c.my_global(kData + 4 * i));
        }
      }
    }(ctx, got);
  });
  wg.run();
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(got[i], 100 + i);
  EXPECT_TRUE(san.findings().empty()) << dump(san);
}

TEST(Sanitizer, MutexProtectedCounterIsClean) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 2, 1);
  const Addr mutex_at = sys.machine().mem().map().global({0, 0}, kFlag);
  const Addr counter_at = sys.machine().mem().map().global({0, 0}, kData);
  const std::uint32_t zero = 0;
  sys.write(counter_at, std::as_bytes(std::span<const std::uint32_t, 1>(&zero, 1)));
  wg.load([=](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, Addr mtx, Addr ctr) -> sim::Op<void> {
      for (int i = 0; i < 3; ++i) {
        co_await c.mutex_lock(mtx);
        const std::uint32_t v = co_await c.read_u32(ctr);
        co_await c.write_u32(ctr, v + 1);
        co_await c.mutex_unlock(mtx);
      }
    }(ctx, mutex_at, counter_at);
  });
  wg.run();
  std::uint32_t total = 0;
  sys.read(counter_at, std::as_writable_bytes(std::span<std::uint32_t, 1>(&total, 1)));
  EXPECT_EQ(total, 6u);
  EXPECT_TRUE(san.findings().empty()) << dump(san);
}

TEST(Sanitizer, HostReadbackAfterWaitIsOrdered) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(2, 3, 1, 1);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      co_await c.write_u32(c.my_global(kData), 7);
    }(ctx);
  });
  wg.run();
  std::uint32_t out = 0;
  sys.read(sys.machine().mem().map().global({2, 3}, kData),
           std::as_writable_bytes(std::span<std::uint32_t, 1>(&out, 1)));
  EXPECT_EQ(out, 7u);
  EXPECT_TRUE(san.findings().empty()) << dump(san);
}

TEST(Sanitizer, RepeatedRacingReadsReportOnce) {
  host::System sys;
  auto& san = sys.machine().enable_sanitizer();
  auto wg = sys.open(0, 0, 1, 2);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      if (c.group_index() == 0) {
        co_await c.write_u32(c.global({0, 1}, kData), 1);
      } else {
        co_await c.compute(10000);
        for (int i = 0; i < 5; ++i) {
          (void)co_await c.read_u32(c.my_global(kData));
        }
      }
    }(ctx);
  });
  wg.run();
  EXPECT_EQ(san.count("race"), 1u) << dump(san);
}

TEST(Sanitizer, DisableDetaches) {
  host::System sys;
  sys.machine().enable_sanitizer();
  EXPECT_EQ(sys.machine().mem().hooks().size(), 1u);
  sys.machine().disable_sanitizer();
  EXPECT_TRUE(sys.machine().mem().hooks().empty());
  EXPECT_EQ(sys.machine().sanitizer(), nullptr);
}

}  // namespace
