// epi-dag tests: job-graph validation/expansion, co-placement, tensor
// handoff transport selection, stage pipelining vs whole-graph serialisation,
// upstream-failure cascades, and pipelined-run determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "sched/dag.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace {

using namespace epi;

// ---- graph validation and expansion ----------------------------------------

sched::JobGraph two_stage_graph(std::uint32_t id = 1) {
  sched::JobGraph g;
  g.id = id;
  g.stages = {{sched::JobKind::Offload, 2, 2, 1, 16},
              {sched::JobKind::Offload, 2, 2, 1, 16}};
  g.edges = {{0, 1, 4096}};
  return g;
}

TEST(JobGraphs, ValidateRejectsMalformedGraphs) {
  sched::JobGraph g = two_stage_graph();
  EXPECT_NO_THROW(sched::validate_graph(g));

  sched::JobGraph zero_id = g;
  zero_id.id = 0;
  EXPECT_THROW(sched::validate_graph(zero_id), std::invalid_argument);

  sched::JobGraph empty = g;
  empty.stages.clear();
  empty.edges.clear();
  EXPECT_THROW(sched::validate_graph(empty), std::invalid_argument);

  sched::JobGraph custom = g;
  custom.stages[1].kind = sched::JobKind::Custom;
  EXPECT_THROW(sched::validate_graph(custom), std::invalid_argument);

  sched::JobGraph backward = g;
  backward.edges = {{1, 0, 4096}};  // must be forward-directed (acyclic)
  EXPECT_THROW(sched::validate_graph(backward), std::invalid_argument);

  sched::JobGraph dangling = g;
  dangling.edges = {{0, 7, 4096}};
  EXPECT_THROW(sched::validate_graph(dangling), std::invalid_argument);

  sched::JobGraph hollow = g;
  hollow.edges = {{0, 1, 0}};
  EXPECT_THROW(sched::validate_graph(hollow), std::invalid_argument);

  sched::JobGraph tall = g;
  tall.stages.assign(9, {sched::JobKind::Offload, 1, 1, 1, 16});
  tall.edges.clear();
  EXPECT_THROW(sched::validate_graph(tall), std::invalid_argument);
}

TEST(JobGraphs, ExpandFillsStageAndDepFields) {
  sched::JobGraph g;
  g.id = 9;
  g.tenant = "dana";
  g.priority = 2;
  g.arrival = 1000;
  g.deadline = 5'000'000;
  g.timeout = 9'000'000;
  g.stages = {{sched::JobKind::Offload, 1, 2, 1, 16},
              {sched::JobKind::Matmul, 2, 2, 1, 8},
              {sched::JobKind::Stencil, 2, 2, 2, 8}};
  g.edges = {{0, 1, 2048}, {1, 2, 1024}};
  const auto specs = sched::expand_graph(g, 40);
  ASSERT_EQ(specs.size(), 3u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(specs[i].id, 40u + i);
    EXPECT_EQ(specs[i].tenant, "dana");
    EXPECT_EQ(specs[i].priority, 2u);
    EXPECT_EQ(specs[i].arrival, 1000u);
    EXPECT_EQ(specs[i].timeout, 9'000'000u);
    EXPECT_EQ(specs[i].graph, 9u);
    EXPECT_EQ(specs[i].stage, i);
    EXPECT_EQ(specs[i].graph_stages, 3u);
  }
  EXPECT_TRUE(specs[0].deps.empty());
  ASSERT_EQ(specs[1].deps.size(), 1u);
  EXPECT_EQ(specs[1].deps[0], (std::pair<std::uint32_t, std::uint32_t>{40, 2048}));
  ASSERT_EQ(specs[2].deps.size(), 1u);
  EXPECT_EQ(specs[2].deps[0], (std::pair<std::uint32_t, std::uint32_t>{41, 1024}));
  // The chain deadline binds only the sink stage.
  EXPECT_EQ(specs[0].deadline, 0u);
  EXPECT_EQ(specs[1].deadline, 0u);
  EXPECT_EQ(specs[2].deadline, 5'000'000u);
}

TEST(JobGraphs, RectsAdjacency) {
  using sched::Placement;
  const Placement a{{0, 0}, 2, 2, false};
  EXPECT_TRUE(sched::rects_adjacent(a, Placement{{0, 2}, 2, 2, false}));  // side
  EXPECT_TRUE(sched::rects_adjacent(a, Placement{{2, 0}, 2, 2, false}));  // below
  EXPECT_TRUE(sched::rects_adjacent(a, Placement{{2, 2}, 2, 2, false}));  // corner
  EXPECT_TRUE(sched::rects_adjacent(a, Placement{{0, 0}, 4, 4, false}));  // overlap
  EXPECT_FALSE(sched::rects_adjacent(a, Placement{{0, 3}, 2, 2, false}));  // 1 gap
  EXPECT_FALSE(sched::rects_adjacent(a, Placement{{5, 5}, 2, 2, false}));
}

TEST(JobGraphs, DrawPipelineIsDeterministicAndValid) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    sched::JobGraph ga = sched::draw_pipeline(a);
    sched::JobGraph gb = sched::draw_pipeline(b);
    ga.id = gb.id = 1;
    EXPECT_NO_THROW(sched::validate_graph(ga));
    ASSERT_EQ(ga.stages.size(), gb.stages.size());
    for (std::size_t s = 0; s < ga.stages.size(); ++s) {
      EXPECT_EQ(ga.stages[s].kind, gb.stages[s].kind);
      EXPECT_EQ(ga.stages[s].rows, gb.stages[s].rows);
      EXPECT_EQ(ga.stages[s].block, gb.stages[s].block);
    }
    EXPECT_GE(ga.stages.size(), 2u);
    EXPECT_LE(ga.stages.size(), 3u);
  }
}

// ---- scheduler behaviour ----------------------------------------------------

std::vector<sched::JobSpec> submit_graph(sched::Scheduler& sc,
                                         const sched::JobGraph& g,
                                         std::uint32_t first_id) {
  auto specs = sched::expand_graph(g, first_id);
  for (const auto& s : specs) sc.submit(s);
  return specs;
}

TEST(DagScheduler, StagesRunInDependencyOrder) {
  host::System sys;
  sched::Scheduler sc(sys);
  sched::JobGraph g;
  g.id = 1;
  g.stages = {{sched::JobKind::Offload, 2, 2, 1, 16},
              {sched::JobKind::Matmul, 2, 2, 1, 8},
              {sched::JobKind::Stencil, 2, 2, 1, 8}};
  g.edges = {{0, 1, 4096}, {1, 2, 2048}};
  submit_graph(sc, g, 0);
  sc.run();
  const auto& recs = sc.records();
  ASSERT_EQ(recs.size(), 3u);
  for (const auto& rec : recs) {
    EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  }
  // A consumer may not start before its producer's kernels finished.
  EXPECT_GE(recs[1].started, recs[0].finished);
  EXPECT_GE(recs[2].started, recs[1].finished);
  // Both edges were pulled, over one transport or the other.
  EXPECT_EQ(sc.handoff_scratch_bytes() + sc.handoff_dram_bytes(), 4096u + 2048u);
}

TEST(DagScheduler, AdjacentConsumerPullsOverScratchpads) {
  // Empty mesh, co-placement on: the consumer lands next to (or on) the
  // producer's freed rectangle and the handoff rides the mesh, not the eLink.
  host::System sys;
  sched::Scheduler sc(sys);
  submit_graph(sc, two_stage_graph(), 0);
  sc.run();
  for (const auto& rec : sc.records()) {
    EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  }
  EXPECT_EQ(sc.handoff_scratch_bytes(), 4096u);
  EXPECT_EQ(sc.handoff_dram_bytes(), 0u);
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.dag.handoff.scratch_bytes"), 4096.0);
  bool logged = false;
  for (const auto& line : sc.event_log()) {
    logged |= line.find("transport=scratch") != std::string::npos;
  }
  EXPECT_TRUE(logged);
}

TEST(DagScheduler, DisablingScratchForcesDramHandoff) {
  host::System sys;
  sched::SchedConfig cfg;
  cfg.scratch_handoff = false;
  sched::Scheduler sc(sys, cfg);
  submit_graph(sc, two_stage_graph(), 0);
  sc.run();
  for (const auto& rec : sc.records()) {
    EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  }
  EXPECT_EQ(sc.handoff_scratch_bytes(), 0u);
  EXPECT_EQ(sc.handoff_dram_bytes(), 4096u);
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.dag.handoff.dram_bytes"), 4096.0);
}

TEST(DagScheduler, SerialisedGraphsNeverOverlap) {
  const auto run = [](bool overlap) {
    host::System sys;
    sched::SchedConfig cfg;
    cfg.pipeline_overlap = overlap;
    sched::Scheduler sc(sys, cfg);
    sched::JobGraph g1 = two_stage_graph(1);
    sched::JobGraph g2 = two_stage_graph(2);
    auto s1 = sched::expand_graph(g1, 0);
    auto s2 = sched::expand_graph(g2, 2);
    for (const auto& s : s1) sc.submit(s);
    for (const auto& s : s2) sc.submit(s);
    sc.run();
    return std::make_pair(sc.records(), sc.makespan());
  };
  const auto [serial, serial_makespan] = run(false);
  for (const auto& rec : serial) {
    ASSERT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  }
  // Whole-graph serialisation: no stage of graph 2 starts before every stage
  // of graph 1 resolved.
  const sim::Cycles g1_done = std::max(serial[0].finished, serial[1].finished);
  EXPECT_GE(serial[2].started, g1_done);
  EXPECT_GE(serial[3].started, g1_done);

  const auto [piped, piped_makespan] = run(true);
  for (const auto& rec : piped) {
    ASSERT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  }
  // Stage pipelining admits graph 2's producer while graph 1 still runs, so
  // the stream finishes no later (strictly earlier on an uncontended mesh).
  EXPECT_LT(piped_makespan, serial_makespan);
}

TEST(DagScheduler, UpstreamFailureCascadesToConsumers) {
  host::System sys;
  sched::Scheduler sc(sys);
  auto specs = sched::expand_graph(two_stage_graph(), 0);
  specs[0].launch_failures = 100;  // exceeds max_attempts: producer Fails
  for (const auto& s : specs) sc.submit(s);
  sc.run();
  const auto& recs = sc.records();
  EXPECT_EQ(recs[0].verdict, sched::Verdict::Failed);
  EXPECT_EQ(recs[1].verdict, sched::Verdict::Failed);
  EXPECT_NE(recs[1].detail.find("upstream stage"), std::string::npos)
      << recs[1].detail;
  EXPECT_EQ(recs[1].started, 0u);  // the orphan was never placed
  EXPECT_EQ(sc.handoff_scratch_bytes() + sc.handoff_dram_bytes(), 0u);
}

TEST(DagScheduler, ReportCarriesPipelineSectionOnlyForGraphRuns) {
  host::System sys;
  sched::Scheduler sc(sys);
  submit_graph(sc, two_stage_graph(), 0);
  sc.run();
  const std::string report = sched::render_report(sc);
  EXPECT_NE(report.find("-- pipelines --"), std::string::npos) << report;
  EXPECT_NE(report.find("graphs 1 | completed 1"), std::string::npos) << report;
  EXPECT_NE(report.find("graph 1 stage 0"), std::string::npos) << report;

  host::System sys2;
  sched::Scheduler sc2(sys2);
  sched::JobSpec solo;
  solo.id = 0;
  solo.kind = sched::JobKind::Offload;
  solo.rows = solo.cols = 2;
  solo.block = 16;
  sc2.submit(solo);
  sc2.run();
  EXPECT_EQ(sched::render_report(sc2).find("-- pipelines --"), std::string::npos);
}

// ---- pipelined traffic ------------------------------------------------------

TEST(PipelineTraffic, GeneratedStreamCarriesWellFormedGraphs) {
  sched::TrafficConfig tc;
  tc.jobs = 40;
  tc.seed = 11;
  tc.pipeline_frac = 0.6;
  const auto jobs = sched::generate(tc);
  ASSERT_EQ(jobs.size(), 40u);
  unsigned graph_jobs = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);  // ids stay consecutive across graph expansion
    if (jobs[i].graph == 0) continue;
    ++graph_jobs;
    EXPECT_LT(jobs[i].stage, jobs[i].graph_stages);
    for (const auto& [dep, bytes] : jobs[i].deps) {
      EXPECT_LT(dep, jobs[i].id);
      EXPECT_EQ(jobs[dep].graph, jobs[i].graph);
      EXPECT_GT(bytes, 0u);
      EXPECT_EQ(bytes % 512u, 0u);  // DMA-aligned tensor sizes
    }
  }
  EXPECT_GT(graph_jobs, 0u);
  // frac=0 with the same seed replays the pre-pipeline stream untouched.
  sched::TrafficConfig plain = tc;
  plain.pipeline_frac = 0.0;
  for (const auto& s : sched::generate(plain)) EXPECT_EQ(s.graph, 0u);
}

TEST(PipelineTraffic, ServedPipelinedStreamIsDeterministic) {
  sched::TrafficConfig tc;
  tc.jobs = 24;
  tc.seed = 5;
  tc.mean_interarrival = 20'000;
  tc.pipeline_frac = 0.5;
  const auto once = [&] {
    host::System sys;
    sched::Scheduler sc(sys);
    for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
    sc.run();
    std::string all = sched::render_report(sc);
    for (const auto& line : sc.event_log()) all += line + "\n";
    return all;
  };
  const std::string a = once();
  EXPECT_EQ(a, once());
  EXPECT_NE(a.find("-- pipelines --"), std::string::npos);
}

TEST(PipelineTraffic, SpecFileRoundTripsGraphFields) {
  sched::TrafficConfig tc;
  tc.jobs = 30;
  tc.seed = 11;
  tc.pipeline_frac = 0.6;
  const auto jobs = sched::generate(tc);
  const std::string text = sched::save(jobs);
  EXPECT_NE(text.find(" graph="), std::string::npos);
  EXPECT_NE(text.find(" deps="), std::string::npos);
  std::istringstream in(text);
  const auto loaded = sched::load(in);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].graph, jobs[i].graph);
    EXPECT_EQ(loaded[i].stage, jobs[i].stage);
    EXPECT_EQ(loaded[i].graph_stages, jobs[i].graph_stages);
    EXPECT_EQ(loaded[i].deps, jobs[i].deps);
  }
  EXPECT_EQ(sched::save(loaded), text);
}

TEST(PipelineTraffic, LoadRejectsMalformedGraphFields) {
  std::istringstream bad_dep("job id=1 kind=offload rows=1 cols=1 graph=1 "
                             "stage=1 stages=2 deps=0x2048\n");
  EXPECT_THROW((void)sched::load(bad_dep), std::runtime_error);
  std::istringstream no_graph("job id=1 kind=offload rows=1 cols=1 deps=0:2048\n");
  EXPECT_THROW((void)sched::load(no_graph), std::runtime_error);
  std::istringstream bad_stage("job id=1 kind=offload rows=1 cols=1 graph=1 "
                               "stage=2 stages=2\n");
  EXPECT_THROW((void)sched::load(bad_stage), std::runtime_error);
}

}  // namespace
