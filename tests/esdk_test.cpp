// Integration tests for the eSDK workalike: workgroups, kernels, device
// memory operations, timers, barriers and mutexes.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "host/system.hpp"

namespace {

using namespace epi;
using arch::Addr;
using arch::CoreCoord;
using arch::Dir;
using sim::Cycles;

TEST(Workgroup, OpenValidatesPlacement) {
  host::System sys;
  EXPECT_NO_THROW((void)sys.open(0, 0, 8, 8));
  EXPECT_NO_THROW((void)sys.open(4, 4, 4, 4));
  EXPECT_THROW((void)sys.open(0, 0, 9, 1), std::out_of_range);
  EXPECT_THROW((void)sys.open(7, 7, 2, 1), std::out_of_range);
  EXPECT_THROW((void)sys.open(0, 0, 0, 1), std::out_of_range);
}

TEST(Workgroup, StartWithoutLoadThrows) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  EXPECT_THROW(wg.start(), std::logic_error);
}

TEST(Workgroup, EveryCoreRunsTheKernel) {
  host::System sys;
  auto wg = sys.open(1, 2, 3, 4);
  std::vector<int> ran(wg.size(), 0);
  wg.load([&ran](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::vector<int>& r) -> sim::Op<void> {
      co_await c.compute(10);
      r[c.group_index()] = 1;
    }(ctx, ran);
  });
  wg.run();
  for (int x : ran) EXPECT_EQ(x, 1);
}

TEST(Workgroup, GroupGeometryExposedToKernels) {
  host::System sys;
  auto wg = sys.open(2, 3, 2, 2);
  auto& ctx = wg.ctx(1, 1);
  EXPECT_EQ(ctx.coord(), (CoreCoord{3, 4}));
  EXPECT_EQ(ctx.group_row(), 1u);
  EXPECT_EQ(ctx.group_col(), 1u);
  EXPECT_EQ(ctx.group_index(), 3u);
  CoreCoord n;
  ASSERT_TRUE(ctx.neighbour(Dir::North, n));
  EXPECT_EQ(n, (CoreCoord{2, 4}));
  EXPECT_FALSE(ctx.neighbour(Dir::South, n));
  EXPECT_FALSE(ctx.neighbour(Dir::East, n));
}

TEST(Workgroup, NeighbourWrapIsTorus) {
  host::System sys;
  auto wg = sys.open(0, 0, 4, 4);
  auto& corner = wg.ctx(0, 0);
  EXPECT_EQ(corner.neighbour_wrap(Dir::West), (CoreCoord{0, 3}));
  EXPECT_EQ(corner.neighbour_wrap(Dir::North), (CoreCoord{3, 0}));
  EXPECT_EQ(corner.neighbour_wrap(Dir::East), (CoreCoord{0, 1}));
  auto& mid = wg.ctx(2, 2);
  EXPECT_EQ(mid.neighbour_wrap(Dir::South), (CoreCoord{3, 2}));
}

TEST(Workgroup, KernelExceptionPropagatesToHost) {
  host::System sys;
  auto wg = sys.open(0, 0, 2, 1);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      co_await c.compute(5);
      if (c.group_index() == 1) throw std::runtime_error("boom");
    }(ctx);
  });
  EXPECT_THROW(wg.run(), std::runtime_error);
}

TEST(Workgroup, StatusWordWrittenOnCompletion) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  auto& ctx = wg.ctx(0, 0);
  wg.load([](device::CoreCtx& c) -> sim::Op<void> {
    return [](device::CoreCtx& x) -> sim::Op<void> { co_await x.compute(3); }(c);
  });
  wg.start();
  EXPECT_EQ(sys.machine().mem().read_value<std::uint32_t>(
                ctx.my_global(device::CoreCtx::kStatusOffset), ctx.coord()),
            0u);
  wg.wait();
  EXPECT_EQ(sys.machine().mem().read_value<std::uint32_t>(
                ctx.my_global(device::CoreCtx::kStatusOffset), ctx.coord()),
            1u);
}

TEST(DeviceMem, RemoteWriteVisibleToTarget) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 2);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      if (c.group_index() == 0) {
        CoreCoord east;
        c.neighbour(Dir::East, east);
        co_await c.write_u32(c.global(east, 0x4000), 0xCAFE);
        co_await c.write_f32(c.global(east, 0x4004), 3.5f);
      } else {
        co_await c.wait_u32_eq(c.my_global(0x4000), 0xCAFE);
      }
    }(ctx);
  });
  wg.run();
  auto& ctx1 = wg.ctx(0, 1);
  EXPECT_EQ(sys.machine().mem().read_value<float>(ctx1.my_global(0x4004), ctx1.coord()),
            3.5f);
}

TEST(DeviceMem, RemoteLoadReturnsValueAndCostsMore) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 2);
  auto& target = wg.ctx(0, 1);
  sys.machine().mem().write_value<std::uint32_t>(target.my_global(0x5000), 77,
                                                 target.coord());
  Cycles local_t = 0, remote_t = 0;
  std::uint32_t got = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, Cycles& lt, Cycles& rt, std::uint32_t& g) -> sim::Op<void> {
      if (c.group_index() != 0) co_return;
      Cycles t0 = c.now();
      (void)co_await c.read_u32(c.my_global(0x5000));
      lt = c.now() - t0;
      t0 = c.now();
      g = co_await c.read_u32(c.global({0, 1}, 0x5000));
      rt = c.now() - t0;
    }(ctx, local_t, remote_t, got);
  });
  wg.run();
  EXPECT_EQ(got, 77u);
  EXPECT_GT(remote_t, local_t);
}

TEST(DeviceMem, DirectWriteBlockCostScalesWithSize) {
  host::System sys;
  auto measure = [&](std::uint32_t bytes) {
    auto wg = sys.open(0, 0, 1, 2);
    wg.load([bytes](device::CoreCtx& ctx) -> sim::Op<void> {
      return [](device::CoreCtx& c, std::uint32_t b) -> sim::Op<void> {
        if (c.group_index() != 0) co_return;
        co_await c.direct_write_block(c.global({0, 1}, 0x4000), 0x4000, b);
      }(ctx, bytes);
    });
    return wg.run();
  };
  const Cycles t1 = measure(400);
  const Cycles t2 = measure(800);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.1);
}

TEST(CTimer, MeasuresElapsedCycles) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  std::uint32_t measured = 0;
  wg.load([&measured](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::uint32_t& out) -> sim::Op<void> {
      // The paper's Listing 1 idiom: set to MAX, start, compute, read.
      auto& t = c.ctimer(0);
      t.set(machine::CTimer::kMax);
      t.start();
      const std::uint32_t before = t.get();
      co_await c.compute(1234);
      const std::uint32_t after = t.get();
      t.stop();
      out = before - after;  // down-counter
    }(ctx, measured);
  });
  wg.run();
  EXPECT_EQ(measured, 1234u);
}

TEST(CTimer, StopFreezesValue) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  std::uint32_t a = 0, b = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::uint32_t& x, std::uint32_t& y) -> sim::Op<void> {
      auto& t = c.ctimer(1);
      t.set(machine::CTimer::kMax);
      t.start();
      co_await c.compute(100);
      t.stop();
      x = t.get();
      co_await c.compute(100);
      y = t.get();
    }(ctx, a, b);
  });
  wg.run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, machine::CTimer::kMax - 100);
}

TEST(CTimer, TwoTimersIndependent) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  std::uint32_t a = 0, b = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::uint32_t& x, std::uint32_t& y) -> sim::Op<void> {
      c.ctimer(0).set(machine::CTimer::kMax);
      c.ctimer(0).start();
      co_await c.compute(50);
      c.ctimer(1).set(machine::CTimer::kMax);
      c.ctimer(1).start();
      co_await c.compute(50);
      x = machine::CTimer::kMax - c.ctimer(0).get();
      y = machine::CTimer::kMax - c.ctimer(1).get();
    }(ctx, a, b);
  });
  wg.run();
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b, 50u);
}

class BarrierTest : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(BarrierTest, NoCoreLeavesEarly) {
  const auto [rows, cols] = GetParam();
  host::System sys;
  auto wg = sys.open(0, 0, rows, cols);
  const unsigned n = rows * cols;
  // After barrier k, every core must observe all cores having reached
  // phase k, despite staggered arrivals.
  std::vector<unsigned> phase(n, 0);
  bool violation = false;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, std::vector<unsigned>& ph, bool& bad,
              unsigned nn) -> sim::Op<void> {
      for (unsigned k = 1; k <= 3; ++k) {
        co_await c.compute(1 + (c.group_index() * 37 + k * 101) % 500);
        ph[c.group_index()] = k;
        co_await c.barrier();
        for (unsigned i = 0; i < nn; ++i) {
          if (ph[i] < k) bad = true;
        }
      }
    }(ctx, phase, violation, n);
  });
  wg.run();
  EXPECT_FALSE(violation);
}

INSTANTIATE_TEST_SUITE_P(Groups, BarrierTest,
                         ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 2u),
                                           std::make_pair(2u, 2u), std::make_pair(2u, 4u),
                                           std::make_pair(4u, 4u), std::make_pair(8u, 8u)));

class MutexTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutexTest, CriticalSectionIsExclusive) {
  const unsigned g = GetParam();
  host::System sys;
  auto wg = sys.open(0, 0, g, g);
  // The mutex word lives in core (0,0)'s scratchpad, as the SDK's workgroup
  // mutex does.
  auto& root = wg.ctx(0, 0);
  const Addr mtx = root.my_global(0x3E00);
  sys.machine().mem().write_value<std::uint32_t>(mtx, 0, root.coord());

  int in_section = 0;
  int max_in_section = 0;
  long total = 0;
  wg.load([&](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, Addr m, int& in, int& mx, long& tot) -> sim::Op<void> {
      for (int k = 0; k < 5; ++k) {
        co_await c.mutex_lock(m);
        ++in;
        mx = std::max(mx, in);
        co_await c.compute(20 + c.group_index() % 7);
        ++tot;
        --in;
        co_await c.mutex_unlock(m);
      }
    }(ctx, mtx, in_section, max_in_section, total);
  });
  wg.run();
  EXPECT_EQ(max_in_section, 1);
  EXPECT_EQ(total, 5L * g * g);
  EXPECT_EQ(sys.machine().mem().read_value<std::uint32_t>(mtx, root.coord()), 0u);
}

INSTANTIATE_TEST_SUITE_P(Groups, MutexTest, ::testing::Values(1u, 2u, 3u, 4u));

TEST(HostIO, SharedMemoryAllocatorAlignsAndBounds) {
  host::System sys;
  const Addr a = sys.shm_alloc(100, 64);
  const Addr b = sys.shm_alloc(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_THROW((void)sys.shm_alloc(33 * 1024 * 1024), std::bad_alloc);
  sys.shm_reset();
  EXPECT_EQ(sys.shm_alloc(16), a);
}

TEST(HostIO, HostReadsKernelResults) {
  host::System sys;
  auto wg = sys.open(0, 0, 2, 2);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      auto out = c.local_array<std::uint32_t>(0x6000, 1);
      out[0] = 1000 + c.group_index();
      co_await c.compute(1);
    }(ctx);
  });
  wg.run();
  for (unsigned r = 0; r < 2; ++r) {
    for (unsigned c = 0; c < 2; ++c) {
      std::uint32_t v = 0;
      sys.read(wg.ctx(r, c).my_global(0x6000),
               std::as_writable_bytes(std::span<std::uint32_t, 1>(&v, 1)));
      EXPECT_EQ(v, 1000u + r * 2 + c);
    }
  }
}

TEST(Workgroup, ReusableAcrossLaunches) {
  // The host can reload and restart a group (e_load/e_start repeat).
  host::System sys;
  auto wg = sys.open(0, 0, 2, 2);
  int total = 0;
  wg.load([&total](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c, int& t) -> sim::Op<void> {
      co_await c.compute(10);
      ++t;
    }(ctx, total);
  });
  wg.run();
  wg.run();
  EXPECT_EQ(total, 8);
}

TEST(Workgroup, DisjointGroupsRunConcurrently) {
  // Two workgroups on disjoint mesh regions execute in the same simulated
  // window: total time is the max, not the sum.
  host::System sys;
  auto a = sys.open(0, 0, 2, 2);
  auto b = sys.open(4, 4, 2, 2);
  auto kernel = [](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      co_await c.compute(1000);
      co_await c.barrier();
    }(ctx);
  };
  a.load(kernel);
  b.load(kernel);
  const Cycles t0 = sys.engine().now();
  a.start();
  b.start();
  a.wait();
  b.wait();
  const Cycles both = sys.engine().now() - t0;
  EXPECT_LT(both, 2200u);  // ~1000 compute + barrier, overlapped
}

TEST(DeviceMem, ExternalStoreGoesThroughELink) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
    return [](device::CoreCtx& c) -> sim::Op<void> {
      co_await c.external_write_block(arch::AddressMap::kExternalBase, 0x4000, 2048);
    }(ctx);
  });
  const Cycles t = wg.run();
  // 2 KB at 150 MB/s = 8192 cycles (+ glue-logic latency).
  EXPECT_GE(t, 8192u);
  EXPECT_LE(t, 9000u);
}

}  // namespace
