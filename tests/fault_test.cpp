// Fault injection, detection and recovery tests: plan parsing errors,
// watchdog semantics (exactly one report per stuck group, no report for a
// merely-slow job), quarantine + relocation, transfer-CRC plumbing, and the
// byte-identity of same-plan runs.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "fault/crc.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "host/system.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace {

using namespace epi;

// ---- CRC ------------------------------------------------------------------

TEST(FaultCrc, MatchesKnownVectorAndChains) {
  // IEEE 802.3 CRC-32 of "123456789" is the classic check value.
  std::byte digits[9];
  for (std::size_t i = 0; i < 9; ++i) digits[i] = static_cast<std::byte>('1' + i);
  EXPECT_EQ(fault::crc32(digits), 0xCBF43926u);
  // Chaining over a split buffer equals the one-shot CRC.
  const auto head = fault::crc32(std::span<const std::byte>{digits, 4});
  EXPECT_EQ(fault::crc32(std::span<const std::byte>{digits + 4, 5}, head),
            0xCBF43926u);
  // A single flipped bit changes the CRC.
  digits[3] ^= std::byte{0x10};
  EXPECT_NE(fault::crc32(digits), 0xCBF43926u);
}

// ---- parser error reporting ----------------------------------------------

std::string parse_error(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)fault::parse(in, "plan");
  } catch (const fault::FaultError& e) {
    return e.what();
  }
  return {};
}

TEST(FaultPlanParser, ErrorsCarrySourceAndLine) {
  EXPECT_EQ(parse_error("kill core=2,3\n").substr(0, 7), "plan:1:");
  EXPECT_EQ(parse_error("seed 5\n\n# ok\nwobble at=3\n").substr(0, 7), "plan:4:");
  EXPECT_NE(parse_error("stall core=1,1 at=5 for=0\n").find("for=CYCLES > 0"),
            std::string::npos);
  EXPECT_NE(parse_error("mem-flip region=rom at=0\n").find("'dram' or 'scratch'"),
            std::string::npos);
  EXPECT_NE(parse_error("kill core=1,1 at=soon\n").find("non-numeric"),
            std::string::npos);
}

TEST(FaultPlanParser, RoundTripsThroughText) {
  fault::ChaosConfig cc;
  cc.seed = 99;
  cc.dims = {8, 8};
  cc.core_kills = 1;
  cc.core_stalls = 2;
  cc.link_faults = 3;
  cc.elink_outages = 1;
  cc.elink_flips = 1;
  cc.mem_flips = 2;
  const fault::FaultPlan plan = fault::generate(cc);
  const std::string text = fault::save(plan);
  std::istringstream in(text);
  EXPECT_EQ(fault::save(fault::parse(in)), text);
}

TEST(WorkloadParser, ErrorsCarrySourceAndLine) {
  const auto err = [](const std::string& text) -> std::string {
    std::istringstream in(text);
    try {
      (void)sched::load(in, "wl");
    } catch (const std::exception& e) {
      return e.what();
    }
    return {};
  };
  EXPECT_EQ(err("task id=0\n").substr(0, 5), "wl:1:");
  EXPECT_EQ(err("# fine\njob id=0 kind=sort\n").substr(0, 5), "wl:2:");
  EXPECT_NE(err("job id=0 kind=matmul rows=0 cols=2 arrival=0\n")
                .find("at least 1x1"),
            std::string::npos);
  EXPECT_NE(err("job id=zero kind=matmul rows=1 cols=1 arrival=0\n")
                .find("non-numeric"),
            std::string::npos);
}

// ---- watchdog semantics ---------------------------------------------------

fault::FaultPlan kill_plan(unsigned row, unsigned col, sim::Cycles at) {
  fault::FaultPlan plan;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::KillCore;
  e.core = {row, col};
  e.at = at;
  plan.events.push_back(e);
  return plan;
}

sched::JobSpec lone_matmul(unsigned iters) {
  sched::JobSpec s;
  s.id = 0;
  s.kind = sched::JobKind::Matmul;
  s.rows = 1;
  s.cols = 1;
  s.iters = iters;
  s.block = 16;
  return s;
}

TEST(Watchdog, StalledCoreTripsExactlyOnceAndJobRelocates) {
  host::System sys;
  sys.machine().enable_faults(kill_plan(0, 0, 1'000));
  sched::SchedConfig cfg;
  cfg.watchdog_cycles = 50'000;
  sched::Scheduler sc(sys, cfg);
  sc.submit(lone_matmul(4));
  sc.run();

  ASSERT_EQ(sc.fault_log().size(), 1u);
  EXPECT_EQ(sc.fault_log()[0].kind, "watchdog");
  EXPECT_EQ(sc.fault_log()[0].job, 0u);
  // The kill struck at cycle 1000; detection latency is bounded by the
  // watchdog horizon, and the report points at the true fault time.
  EXPECT_EQ(sc.fault_log()[0].since, 1'000u);
  EXPECT_LE(sc.fault_log()[0].detected, 1'000u + 2 * 50'000u);

  EXPECT_EQ(sc.allocator().quarantined_cores(), 1u);
  const sched::JobRecord& rec = sc.records()[0];
  EXPECT_EQ(rec.verdict, sched::Verdict::Completed);
  EXPECT_EQ(rec.recovery, sched::Recovery::Relocated);
  EXPECT_EQ(rec.reexecs, 1u);
  // The re-execution cannot land on the quarantined core.
  EXPECT_FALSE(rec.placed_row == 0 && rec.placed_col == 0);
}

TEST(Watchdog, HealthySlowJobDoesNotTrip) {
  host::System sys;
  sys.machine().enable_faults(fault::FaultPlan{});  // armed, but empty
  sched::SchedConfig cfg;
  cfg.watchdog_cycles = 2'000;  // far below the job's true service time
  sched::Scheduler sc(sys, cfg);
  sc.submit(lone_matmul(20));
  sc.run();

  EXPECT_TRUE(sc.fault_log().empty());
  EXPECT_EQ(sc.allocator().quarantined_cores(), 0u);
  const sched::JobRecord& rec = sc.records()[0];
  EXPECT_EQ(rec.verdict, sched::Verdict::Completed);
  EXPECT_EQ(rec.recovery, sched::Recovery::None);
  EXPECT_GT(rec.service(), cfg.watchdog_cycles);  // it really was "late"
}

TEST(Watchdog, ZeroDisablesAndStuckGroupStillDeadlocks) {
  host::System sys;
  sys.machine().enable_faults(kill_plan(0, 0, 1'000));
  sched::Scheduler sc(sys);  // watchdog_cycles == 0: pre-fault behaviour
  sc.submit(lone_matmul(4));
  EXPECT_THROW(sc.run(), sim::DeadlockError);
}

// ---- determinism ----------------------------------------------------------

struct ChaosRun {
  std::string report;
  std::vector<std::string> log;
  std::vector<std::string> faults;
};

ChaosRun run_chaos(const fault::FaultPlan& plan) {
  host::System sys;
  sys.machine().enable_faults(plan);
  sched::TrafficConfig tc;
  tc.jobs = 20;
  tc.seed = 5;
  tc.mean_interarrival = 25'000;
  sched::SchedConfig cfg;
  cfg.watchdog_cycles = 300'000;
  sched::Scheduler sc(sys, cfg);
  for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
  sc.run();
  ChaosRun out;
  out.report = sched::render_report(sc);
  out.log = sc.event_log();
  for (const auto& r : sc.fault_log()) out.faults.push_back(fault::to_line(r));
  return out;
}

TEST(FaultDeterminism, SamePlanSameWorkloadIsByteIdentical) {
  fault::ChaosConfig cc;
  cc.seed = 21;
  cc.dims = {8, 8};
  cc.horizon = 500'000;
  cc.core_kills = 1;
  cc.link_faults = 5;
  cc.elink_flips = 1;
  cc.mem_flips = 1;
  const fault::FaultPlan plan = fault::generate(cc);
  const ChaosRun a = run_chaos(plan);
  const ChaosRun b = run_chaos(plan);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.faults, b.faults);
}

TEST(FaultDeterminism, EmptyPlanMatchesUninstrumentedRun) {
  sched::TrafficConfig tc;
  tc.jobs = 16;
  tc.seed = 9;
  tc.mean_interarrival = 30'000;
  const std::vector<sched::JobSpec> jobs = sched::generate(tc);

  auto serve = [&](bool arm) {
    host::System sys;
    if (arm) sys.machine().enable_faults(fault::FaultPlan{});
    sched::Scheduler sc(sys);
    for (const auto& spec : jobs) sc.submit(spec);
    sc.run();
    return std::tuple<std::string, std::vector<std::string>, sim::Cycles>(
        sched::render_report(sc), sc.event_log(), sc.makespan());
  };
  EXPECT_EQ(serve(false), serve(true));
}

}  // namespace
