// Unit tests for the discrete-event engine and coroutine task types.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace {

using namespace epi::sim;

Op<void> record_at(Engine& e, Cycles d, std::vector<Cycles>& log) {
  co_await delay(e, d);
  log.push_back(e.now());
}

TEST(Engine, StartsAtCycleZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, DelayAdvancesTime) {
  Engine e;
  std::vector<Cycles> log;
  spawn(e, record_at(e, 42, log));
  e.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 42u);
  EXPECT_EQ(e.now(), 42u);
}

TEST(Engine, ZeroDelayDoesNotSuspend) {
  Engine e;
  std::vector<Cycles> log;
  spawn(e, record_at(e, 0, log));
  e.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<Cycles> log;
  spawn(e, record_at(e, 30, log));
  spawn(e, record_at(e, 10, log));
  spawn(e, record_at(e, 20, log));
  e.run();
  EXPECT_EQ(log, (std::vector<Cycles>{10, 20, 30}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  auto mk = [&](int id) -> Op<void> {
    co_await delay(e, 5);
    order.push_back(id);
  };
  spawn(e, mk(1));
  spawn(e, mk(2));
  spawn(e, mk(3));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine e;
  std::vector<Cycles> log;
  spawn(e, record_at(e, 100, log));
  spawn(e, record_at(e, 200, log));
  e.run_until(150);
  EXPECT_EQ(log, (std::vector<Cycles>{100}));
  e.run_until(250);
  EXPECT_EQ(log, (std::vector<Cycles>{100, 200}));
}

TEST(Engine, CallAtRunsCallback) {
  Engine e;
  Cycles fired = 0;
  e.call_at(77, [&] { fired = e.now(); });
  e.run();
  EXPECT_EQ(fired, 77u);
}

TEST(Engine, SchedulingInThePastClampsToNow) {
  Engine e;
  std::vector<Cycles> log;
  spawn(e, [](Engine& eng, std::vector<Cycles>& l) -> Op<void> {
    co_await delay(eng, 50);
    // call_at in the past must not rewind time
    eng.call_at(10, [&] { l.push_back(eng.now()); });
  }(e, log));
  e.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 50u);
}

Op<int> add_later(Engine& e, int a, int b) {
  co_await delay(e, 3);
  co_return a + b;
}

Op<int> nested(Engine& e) {
  const int x = co_await add_later(e, 1, 2);
  const int y = co_await add_later(e, x, 10);
  co_return y;
}

TEST(Op, ValueReturningOpsCompose) {
  Engine e;
  int result = 0;
  spawn(e, [](Engine& eng, int& out) -> Op<void> {
    out = co_await nested(eng);
  }(e, result));
  e.run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(e.now(), 6u);  // two 3-cycle ops in sequence
}

TEST(Op, NonDefaultConstructibleResult) {
  struct Boxed {
    explicit Boxed(int v) : v(v) {}
    int v;
  };
  Engine e;
  int got = 0;
  auto make = [](Engine& eng) -> Op<Boxed> {
    co_await delay(eng, 1);
    co_return Boxed(99);
  };
  // Capture-less: a capturing coroutine lambda's closure dies with the full
  // expression, leaving the suspended frame with dangling capture refs.
  spawn(e, [](Engine& eng, int& out, decltype(make)& mk) -> Op<void> {
    Boxed b = co_await mk(eng);
    out = b.v;
  }(e, got, make));
  e.run();
  EXPECT_EQ(got, 99);
}

TEST(Process, ReportsCompletion) {
  Engine e;
  auto p = spawn(e, [](Engine& eng) -> Op<void> { co_await delay(eng, 10); }(e));
  EXPECT_FALSE(p.done());
  e.run();
  EXPECT_TRUE(p.done());
  EXPECT_FALSE(p.failed());
}

TEST(Process, PropagatesExceptions) {
  Engine e;
  auto p = spawn(e, [](Engine& eng) -> Op<void> {
    co_await delay(eng, 1);
    throw std::runtime_error("kernel fault");
  }(e));
  e.run();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.rethrow_if_error(), std::runtime_error);
}

TEST(Process, ExceptionCrossesOpBoundary) {
  Engine e;
  auto inner = [](Engine& eng) -> Op<int> {
    co_await delay(eng, 1);
    throw std::logic_error("inner");
  };
  bool caught = false;
  auto p = spawn(e, [](Engine& eng, decltype(inner)& in, bool& c) -> Op<void> {
    try {
      (void)co_await in(eng);
    } catch (const std::logic_error&) {
      c = true;
    }
  }(e, inner, caught));
  e.run();
  EXPECT_TRUE(caught);
  EXPECT_FALSE(p.failed());
}

TEST(Process, StartDelayHonoured) {
  Engine e;
  Cycles started = ~Cycles{0};
  spawn(e, [](Engine& eng, Cycles& s) -> Op<void> {
    s = eng.now();
    co_return;
  }(e, started), 25);
  e.run();
  EXPECT_EQ(started, 25u);
}

TEST(WaitQueue, NotifyAllWakesEveryWaiter) {
  Engine e;
  WaitQueue q(e);
  std::vector<int> woke;
  auto waiter = [&](int id) -> Op<void> {
    co_await q.wait();
    woke.push_back(id);
  };
  spawn(e, waiter(1));
  spawn(e, waiter(2));
  spawn(e, [](Engine& eng, WaitQueue& wq) -> Op<void> {
    co_await delay(eng, 5);
    wq.notify_all();
  }(e, q));
  e.run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 5u);
}

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Engine e;
  WaitQueue q(e);
  std::vector<int> woke;
  auto waiter = [&](int id) -> Op<void> {
    co_await q.wait();
    woke.push_back(id);
  };
  spawn(e, waiter(1));
  spawn(e, waiter(2));
  spawn(e, [](Engine& eng, WaitQueue& wq) -> Op<void> {
    co_await delay(eng, 1);
    wq.notify_one();
    co_await delay(eng, 1);
    wq.notify_one();
  }(e, q));
  e.run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2}));
}

TEST(Deadlock, DetectedWhenWaiterIsNeverNotified) {
  Engine e;
  WaitQueue q(e);
  spawn(e, [](WaitQueue& wq) -> Op<void> { co_await wq.wait(); }(q));
  EXPECT_THROW(e.run(), DeadlockError);
}

TEST(Deadlock, RunUntilDoesNotThrow) {
  Engine e;
  WaitQueue q(e);
  spawn(e, [](WaitQueue& wq) -> Op<void> { co_await wq.wait(); }(q));
  EXPECT_NO_THROW(e.run_until(1000));
  EXPECT_EQ(e.live_processes(), 1u);
}

TEST(PollUntil, ResumesWhenPredicateHolds) {
  Engine e;
  bool flag = false;
  Cycles resumed = 0;
  spawn(e, [](Engine& eng, bool& f, Cycles& r) -> Op<void> {
    co_await poll_until(eng, [&f] { return f; }, 10);
    r = eng.now();
  }(e, flag, resumed));
  e.call_at(35, [&] { flag = true; });
  e.run();
  EXPECT_GE(resumed, 35u);
  EXPECT_LE(resumed, 45u);  // within one poll interval
}

TEST(Join, WaitsForProcessCompletion) {
  Engine e;
  auto p = spawn(e, [](Engine& eng) -> Op<void> { co_await delay(eng, 100); }(e));
  Cycles joined = 0;
  spawn(e, [](Engine& eng, Process proc, Cycles& j) -> Op<void> {
    co_await join(eng, proc);
    j = eng.now();
  }(e, p, joined));
  e.run();
  // Event-driven join: the joiner resumes exactly at the completion cycle.
  EXPECT_EQ(joined, 100u);
}

TEST(Join, AlreadyDoneProcessResumesImmediately) {
  Engine e;
  auto p = spawn(e, [](Engine& eng) -> Op<void> { co_await delay(eng, 5); }(e));
  e.run();
  ASSERT_TRUE(p.done());
  Cycles joined = ~Cycles{0};
  spawn(e, [](Engine& eng, Process proc, Cycles& j) -> Op<void> {
    co_await join(eng, proc);
    j = eng.now();
  }(e, p, joined));
  e.run();
  EXPECT_EQ(joined, 5u);  // no extra wait beyond the current cycle
}

TEST(Join, PropagatesProcessException) {
  Engine e;
  auto p = spawn(e, []() -> Op<void> {
    co_await std::suspend_never{};
    throw std::runtime_error("kernel fault");
  }());
  bool caught = false;
  spawn(e, [](Engine& eng, Process proc, bool& c) -> Op<void> {
    try {
      co_await join(eng, proc);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(e, p, caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Determinism, SameSeedSameSchedule) {
  auto run_once = [] {
    Engine e;
    Rng rng(12345);
    std::vector<Cycles> log;
    for (int i = 0; i < 50; ++i) {
      spawn(e, record_at(e, rng.next_below(1000), log));
    }
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(1);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, FloatInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const float f = r.next_float(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
  }
}

TEST(Engine, ManyProcessesDrainCompletely) {
  Engine e;
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    spawn(e, [](Engine& eng, int d, int& n) -> Op<void> {
      co_await delay(eng, static_cast<Cycles>(d));
      co_await delay(eng, 1);
      ++n;
    }(e, i % 97, completed));
  }
  e.run();
  EXPECT_EQ(completed, 1000);
  EXPECT_EQ(e.live_processes(), 0u);
}

}  // namespace
