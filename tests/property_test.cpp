// Property-based tests: determinism of the whole stack, fuzzed DMA
// descriptor semantics, stencil correctness under random weights and
// decompositions, and conservation laws of the eLink arbiter.

#include <gtest/gtest.h>

#include "core/matmul.hpp"
#include "core/microbench.hpp"
#include "core/stencil.hpp"
#include "dma/descriptor.hpp"
#include "machine/machine.hpp"
#include "sim/random.hpp"

namespace {

using namespace epi;
using arch::Addr;
using arch::CoreCoord;
using sim::Cycles;

// ---- determinism ------------------------------------------------------------

TEST(Determinism, StencilRunsAreBitReproducible) {
  auto run = [] {
    host::System sys;
    core::StencilConfig cfg;
    cfg.rows = 16;
    cfg.cols = 12;
    cfg.iters = 7;
    auto ex = core::run_stencil_experiment(sys, 2, 3, cfg, 99, true);
    return std::make_pair(ex.result.cycles, ex.max_error);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.second, 0.0f);
}

TEST(Determinism, MatmulRunsAreBitReproducible) {
  auto run = [] {
    host::System sys;
    return core::run_matmul_onchip(sys, 4, 16, core::Codegen::TunedAsm, 5, false).cycles;
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, MicrobenchReproducible) {
  auto run = [] {
    host::System sys;
    return core::measure_elink_contention(sys, 4, 4, 2048, 0.003);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].iterations, b.nodes[i].iterations);
  }
}

// ---- fuzzed DMA descriptors --------------------------------------------------

class DmaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DmaFuzz, RandomDescriptorMatchesReferenceWalk) {
  sim::Rng rng(GetParam());
  arch::MachineConfig mc;
  machine::Machine m(mc);
  const CoreCoord src_core{0, 0};
  const CoreCoord dst_core{1, 1};
  const Addr src_base = m.mem().map().global(src_core, 0x2000);
  const Addr dst_base = m.mem().map().global(dst_core, 0x2000);

  // Seed source memory.
  std::vector<std::byte> img(24576);
  for (auto& b : img) b = static_cast<std::byte>(rng.next_below(256));
  m.mem().write_bytes(src_base, img, src_core);

  // Draw a random but in-bounds 2D descriptor.
  static constexpr dma::ElemSize kElems[] = {dma::ElemSize::Byte, dma::ElemSize::HWord,
                                             dma::ElemSize::Word, dma::ElemSize::DWord};
  dma::DmaDescriptor d;
  d.elem = kElems[rng.next_below(4)];
  const auto esz = static_cast<std::uint32_t>(static_cast<std::uint8_t>(d.elem));
  d.inner_count = 1 + static_cast<std::uint32_t>(rng.next_below(16));
  d.outer_count = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  d.src_inner_stride = static_cast<std::int32_t>(esz * (1 + rng.next_below(3)));
  d.dst_inner_stride = static_cast<std::int32_t>(esz * (1 + rng.next_below(3)));
  d.src_outer_stride = static_cast<std::int32_t>(esz * rng.next_below(5));
  d.dst_outer_stride = static_cast<std::int32_t>(esz * rng.next_below(5));
  d.src = src_base;
  d.dst = dst_base;

  // Reference walk over a shadow image.
  std::vector<std::byte> shadow(24576);
  m.mem().read_bytes(dst_base, shadow, dst_core);
  {
    std::size_t s = 0, t = 0;
    for (std::uint32_t o = 0; o < d.outer_count; ++o) {
      for (std::uint32_t i = 0; i < d.inner_count; ++i) {
        for (std::uint32_t b = 0; b < esz; ++b) shadow[t + b] = img[s + b];
        s += static_cast<std::size_t>(d.src_inner_stride);
        t += static_cast<std::size_t>(d.dst_inner_stride);
      }
      s += static_cast<std::size_t>(d.src_outer_stride);
      t += static_cast<std::size_t>(d.dst_outer_stride);
    }
  }

  auto& chan = m.core(src_core).dma[0];
  chan.start(d);
  sim::spawn(m.engine(), chan.wait());
  m.engine().run();

  std::vector<std::byte> got(24576);
  m.mem().read_bytes(dst_base, got, dst_core);
  EXPECT_TRUE(std::equal(shadow.begin(), shadow.end(), got.begin()))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u,
                                           144u, 233u));

// ---- stencil properties --------------------------------------------------------

class StencilWeightFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StencilWeightFuzz, RandomWeightsExactOnRandomDecomposition) {
  sim::Rng rng(GetParam());
  host::System sys;
  core::StencilConfig cfg;
  cfg.rows = 4 + static_cast<unsigned>(rng.next_below(12));
  cfg.cols = 4 + static_cast<unsigned>(rng.next_below(12));
  cfg.iters = 1 + static_cast<unsigned>(rng.next_below(5));
  cfg.weights.top = rng.next_float(-0.5f, 0.5f);
  cfg.weights.bottom = rng.next_float(-0.5f, 0.5f);
  cfg.weights.left = rng.next_float(-0.5f, 0.5f);
  cfg.weights.right = rng.next_float(-0.5f, 0.5f);
  cfg.weights.centre = rng.next_float(-0.5f, 0.5f);
  const unsigned gr = 1 + static_cast<unsigned>(rng.next_below(4));
  const unsigned gc = 1 + static_cast<unsigned>(rng.next_below(4));
  auto ex = core::run_stencil_experiment(sys, gr, gc, cfg, GetParam() * 7919, true);
  EXPECT_EQ(ex.max_error, 0.0f) << gr << "x" << gc << " tile " << cfg.rows << "x"
                                << cfg.cols << " iters " << cfg.iters;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StencilWeightFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u,
                                           110u));

TEST(StencilProperty, ZeroIterationsLeavesGridUntouched) {
  host::System sys;
  core::StencilConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.iters = 0;
  std::vector<float> grid(10 * 10);
  util::fill_random(grid, 3);
  const std::vector<float> before(grid);
  (void)core::run_stencil(sys, 1, 1, cfg, grid);
  EXPECT_EQ(util::max_abs_diff(grid, before), 0.0f);
}

TEST(StencilProperty, CyclesScaleLinearlyWithIterations) {
  auto cycles_for = [](unsigned iters) {
    host::System sys;
    core::StencilConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.iters = iters;
    cfg.communicate = false;
    return core::run_stencil_experiment(sys, 1, 1, cfg, 1, false).result.cycles;
  };
  const Cycles c10 = cycles_for(10);
  const Cycles c20 = cycles_for(20);
  EXPECT_EQ(c20, 2 * c10);
}

// ---- matmul properties -----------------------------------------------------------

class MatmulRectFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulRectFuzz, RandomRectangularBlocksVerify) {
  sim::Rng rng(GetParam());
  host::System sys;
  const unsigned g = 2 + static_cast<unsigned>(rng.next_below(3));  // 2..4
  // Even per-core dims in [4, 16] keep every comm scheme eligible.
  const auto dim = [&] { return 4 + 2 * static_cast<unsigned>(rng.next_below(7)); };
  const unsigned m = dim(), n = dim(), k = dim();
  auto r = core::run_matmul_onchip_rect(sys, g, m, n, k, core::Codegen::TunedAsm,
                                        GetParam() * 31, true);
  EXPECT_TRUE(r.verified) << "g=" << g << " " << m << "x" << n << "x" << k
                          << " err=" << r.max_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulRectFuzz,
                         ::testing::Values(7u, 14u, 21u, 28u, 35u, 42u, 49u, 56u));

TEST(MatmulProperty, IdentityTimesMatrixIsMatrix) {
  host::System sys;
  auto wg = sys.open(0, 0, 1, 1);
  auto& ctx = wg.ctx(0, 0);
  const unsigned n = 16;
  std::vector<float> ident(n * n, 0.0f);
  for (unsigned i = 0; i < n; ++i) ident[i * n + i] = 1.0f;
  std::vector<float> b(n * n);
  util::fill_random(b, 123);
  std::vector<float> c(n * n, 0.0f);
  sys.write_array<float>(ctx.my_global(core::MatmulLayout::kARegion),
                         std::span<const float>(ident));
  sys.write_array<float>(ctx.my_global(core::MatmulLayout::kBRegion),
                         std::span<const float>(b));
  sys.write_array<float>(ctx.my_global(core::MatmulLayout::kC), std::span<const float>(c));
  // Reuse the single-core runner indirectly: multiply via the public entry.
  // (run_matmul_single generates its own operands, so drive the reference
  // check by hand here.)
  std::vector<float> ref(n * n);
  util::matmul_reference(ident, b, ref, n, n, n);
  EXPECT_EQ(util::max_abs_diff(ref, b), 0.0f);
}

// ---- eLink conservation -------------------------------------------------------

TEST(ELinkProperty, ServedBytesAreConserved) {
  host::System sys;
  auto res = core::measure_elink_contention(sys, 4, 4, 1024, 0.002);
  const std::uint64_t served = sys.machine().elink_write().total_bytes_served();
  std::uint64_t counted = 0;
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      counted += sys.machine().elink_write().bytes_served({r, c});
    }
  }
  EXPECT_EQ(served, counted);
  // Iteration counts only include the in-window blocks, so they bound the
  // arbiter's served bytes from below.
  std::uint64_t window_bytes = 0;
  for (const auto& n : res.nodes) window_bytes += n.iterations * 1024;
  EXPECT_LE(window_bytes, served);
}

TEST(ELinkProperty, UtilizationNeverExceedsUnity) {
  host::System sys;
  auto res = core::measure_elink_contention(sys, 8, 8, 2048, 0.004);
  double total = 0.0;
  for (const auto& n : res.nodes) {
    EXPECT_GE(n.utilization, 0.0);
    EXPECT_LE(n.utilization, 1.0);
    total += n.utilization;
  }
  EXPECT_LE(total, 1.01);
}

}  // namespace
