// epi-serve scheduler tests: mesh allocation, core reservations, admission /
// aging / retry / timeout policy, and run-over-run determinism.

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <vector>

#include "host/system.hpp"
#include "lint/wg_fixtures.hpp"
#include "offload/queue.hpp"
#include "sched/allocator.hpp"
#include "sched/dag.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "sim/random.hpp"

namespace {

using namespace epi;

// ---- MeshAllocator --------------------------------------------------------

TEST(MeshAllocator, FirstFitIsDeterministic) {
  const std::vector<std::pair<unsigned, unsigned>> requests = {
      {2, 2}, {4, 4}, {1, 8}, {2, 4}, {3, 3}};
  std::vector<sched::Placement> first, second;
  for (auto* out : {&first, &second}) {
    sched::MeshAllocator a({8, 8});
    for (auto [r, c] : requests) {
      auto p = a.place(r, c);
      ASSERT_TRUE(p.has_value());
      out->push_back(*p);
    }
  }
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].origin.row, second[i].origin.row);
    EXPECT_EQ(first[i].origin.col, second[i].origin.col);
    EXPECT_EQ(first[i].rows, second[i].rows);
    EXPECT_EQ(first[i].cols, second[i].cols);
  }
}

TEST(MeshAllocator, ChurnLeavesNoLeakedCores) {
  sched::MeshAllocator a({8, 8});
  std::vector<sched::Placement> live;
  // Interleave placements and frees for a few hundred rounds; the shape mix
  // fragments and re-coalesces the grid.
  const std::pair<unsigned, unsigned> shapes[] = {{1, 1}, {2, 2}, {2, 4}, {4, 4}, {1, 8}};
  for (unsigned round = 0; round < 300; ++round) {
    auto [r, c] = shapes[round % std::size(shapes)];
    if (auto p = a.place(r, c)) live.push_back(*p);
    if (round % 3 == 2 && !live.empty()) {
      a.free(live[live.size() / 2]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(live.size() / 2));
    }
  }
  for (const auto& p : live) a.free(p);
  EXPECT_EQ(a.free_cores(), 64u);
  EXPECT_EQ(a.largest_free_rect(), 64u);
  EXPECT_EQ(a.fragmentation(), 0.0);
  // The grid is genuinely empty again: a full-mesh placement succeeds.
  EXPECT_TRUE(a.place(8, 8).has_value());
}

TEST(MeshAllocator, RejectsUnsatisfiableShapes) {
  sched::MeshAllocator a({8, 8});
  EXPECT_FALSE(a.fits_ever(9, 1));
  EXPECT_FALSE(a.fits_ever(1, 9));
  EXPECT_FALSE(a.fits_ever(0, 4));
  EXPECT_FALSE(a.place(9, 9).has_value());
  EXPECT_TRUE(a.fits_ever(8, 8));
  // Rotation admits a shape whose transpose fits.
  EXPECT_TRUE(a.fits_ever(3, 8));
  auto p = a.place(8, 3, /*allow_rotate=*/true);
  ASSERT_TRUE(p.has_value());
}

TEST(MeshAllocator, RotationAndFragmentation) {
  sched::MeshAllocator a({8, 8});
  // Occupy rows 0-5 fully: only a 2x8 strip remains.
  auto big = a.place(6, 8);
  ASSERT_TRUE(big.has_value());
  // 8x2 cannot stand upright any more; rotation lands it in the strip.
  auto p = a.place(8, 2, /*allow_rotate=*/true);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->rotated);
  EXPECT_EQ(p->rows, 2u);
  EXPECT_EQ(p->cols, 8u);
  EXPECT_EQ(a.free_cores(), 0u);
  EXPECT_EQ(a.fragmentation(), 0.0);  // full mesh: no free cores to fragment
  a.free(*p);
  EXPECT_EQ(a.largest_free_rect(), 16u);
  EXPECT_THROW(a.free(*p), std::logic_error);  // double free
}

// ---- core reservations (host::System::open overlap rejection) -------------

TEST(Reservations, OverlappingOpenIsRejected) {
  host::System sys;
  auto wg = sys.open(2, 2, 4, 4);
  try {
    auto overlap = sys.open(4, 4, 2, 2);
    FAIL() << "overlapping open must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("already reserved"), std::string::npos)
        << e.what();
  }
  // Disjoint rectangles coexist.
  auto beside = sys.open(0, 0, 2, 2);
  SUCCEED();
}

TEST(Reservations, DestructionReleasesCores) {
  host::System sys;
  {
    auto wg = sys.open(0, 0, 8, 8);
    EXPECT_EQ(sys.machine().reservations().reserved_count(), 64u);
  }
  EXPECT_EQ(sys.machine().reservations().reserved_count(), 0u);
  auto again = sys.open(0, 0, 8, 8);  // fully reusable after release
  SUCCEED();
}

TEST(Reservations, MoveTransfersOwnership) {
  host::System sys;
  auto wg = sys.open(1, 1, 2, 2);
  host::Workgroup moved = std::move(wg);
  EXPECT_EQ(sys.machine().reservations().reserved_count(), 4u);
  EXPECT_THROW((void)sys.open(1, 1, 1, 1), std::runtime_error);
}

// ---- offload queue heap reporting -----------------------------------------

TEST(OffloadHeap, ExhaustionReportsSizes) {
  host::System sys;
  offload::Queue q(sys, 2, 2);
  // The per-core heap is 0x4000..0x7BFF (15360 bytes). One 3000-float stripe
  // per core = 12000 bytes; a second such buffer exhausts it.
  auto buf = q.alloc(4 * 3000);
  EXPECT_EQ(buf.stripe(), 3000u);
  try {
    (void)q.alloc(4 * 3000);
    FAIL() << "second 12000-byte stripe must exhaust the 15360-byte heap";
  } catch (const offload::HeapExhausted& e) {
    EXPECT_EQ(e.requested(), 3000u * sizeof(float));
    EXPECT_EQ(e.available(), 15360u - 12000u);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("offload heap exhausted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("12000"), std::string::npos) << msg;
  }
  // HeapExhausted still satisfies callers catching the old bare bad_alloc.
  EXPECT_THROW((void)q.alloc(4 * 3000), std::bad_alloc);
  // release_all() makes the heap fully reusable.
  q.release_all();
  EXPECT_EQ(q.heap_available(), 0x3C00u);
  auto buf3 = q.alloc(4 * 3000);
  EXPECT_EQ(buf3.offset(), offload::Queue::kHeapBase);
}

// ---- scheduler policy -----------------------------------------------------

sched::JobSpec make_job(std::uint32_t id, unsigned rows, unsigned cols,
                        unsigned prio, sim::Cycles arrival) {
  sched::JobSpec s;
  s.id = id;
  s.kind = sched::JobKind::Offload;
  s.rows = rows;
  s.cols = cols;
  s.priority = prio;
  s.arrival = arrival;
  s.block = 16;
  s.iters = 1;
  return s;
}

TEST(Scheduler, RunsConcurrentWorkgroupsAndResolvesEverything) {
  host::System sys;
  sched::Scheduler sc(sys);
  for (std::uint32_t i = 0; i < 6; ++i) {
    sc.submit(make_job(i, 2, 2, 0, i * 100));
  }
  sc.run();
  EXPECT_GE(sc.peak_resident(), 3u);  // four 2x2s fit side by side
  for (const auto& rec : sc.records()) {
    EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << "job " << rec.spec.id;
    EXPECT_GE(rec.finished, rec.started);
  }
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.jobs.completed"), 6.0);
}

TEST(Scheduler, UnsatisfiableShapeAndFullQueueAreRejected) {
  host::System sys;
  sched::SchedConfig cfg;
  cfg.queue_capacity = 1;
  sched::Scheduler sc(sys, cfg);
  sc.submit(make_job(0, 9, 9, 0, 0));   // can never fit
  sc.submit(make_job(1, 8, 8, 0, 0));   // placed immediately (queue drains)
  sc.submit(make_job(2, 8, 8, 0, 10));  // waits behind the running 8x8
  sc.submit(make_job(3, 8, 8, 0, 20));  // queue of 1 is full -> rejected
  sc.run();
  const auto& recs = sc.records();
  EXPECT_EQ(recs[0].verdict, sched::Verdict::Rejected);
  EXPECT_NE(recs[0].detail.find("cannot fit"), std::string::npos);
  EXPECT_EQ(recs[1].verdict, sched::Verdict::Completed);
  EXPECT_EQ(recs[2].verdict, sched::Verdict::Completed);
  EXPECT_EQ(recs[3].verdict, sched::Verdict::Rejected);
  EXPECT_NE(recs[3].detail.find("queue full"), std::string::npos);
}

TEST(Scheduler, TimeoutDropsUnstartedJobs) {
  host::System sys;
  sched::Scheduler sc(sys);
  sc.submit(make_job(0, 8, 8, 0, 0));  // holds the whole mesh
  auto starved = make_job(1, 8, 8, 0, 0);
  starved.timeout = 2;  // cannot possibly start within 2 cycles
  sc.submit(starved);
  sc.run();
  EXPECT_EQ(sc.records()[0].verdict, sched::Verdict::Completed);
  EXPECT_EQ(sc.records()[1].verdict, sched::Verdict::TimedOut);
  EXPECT_NE(sc.records()[1].detail.find("not started"), std::string::npos);
}

TEST(Scheduler, LaunchFailuresRetryWithBackoffThenStick) {
  host::System sys;
  sched::Scheduler sc(sys);
  auto flaky = make_job(0, 2, 2, 0, 0);
  flaky.launch_failures = 2;
  sc.submit(flaky);
  auto doomed = make_job(1, 2, 2, 0, 0);
  doomed.launch_failures = 100;  // more than max_attempts
  sc.submit(doomed);
  sc.run();
  EXPECT_EQ(sc.records()[0].verdict, sched::Verdict::Completed);
  EXPECT_EQ(sc.records()[0].attempts, 3u);
  EXPECT_EQ(sc.records()[1].verdict, sched::Verdict::Failed);
  EXPECT_EQ(sc.records()[1].attempts, 4u);  // default max_attempts
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.launch.retries"), 2.0 + 3.0);
}

TEST(Scheduler, AgingPreventsStarvationOfTheBigJob) {
  host::System sys;
  sched::SchedConfig cfg;
  cfg.aging_quantum = 20'000;
  cfg.head_block_wait = 60'000;
  sched::Scheduler sc(sys, cfg);
  // One low-priority full-mesh job at t=0 against a continuous stream of
  // small urgent jobs: without aging + head-blocking the 8x8 never finds 64
  // free cores.
  auto big = make_job(0, 8, 8, 0, 0);
  sc.submit(big);
  for (std::uint32_t i = 1; i <= 40; ++i) {
    sc.submit(make_job(i, 2, 2, 3, i * 4'000));
  }
  sc.run();
  EXPECT_EQ(sc.records()[0].verdict, sched::Verdict::Completed)
      << sc.records()[0].detail;
  for (const auto& rec : sc.records()) {
    EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << "job " << rec.spec.id;
  }
}

TEST(Scheduler, MixedSeededWorkloadIsDeterministic) {
  sched::TrafficConfig tc;
  tc.jobs = 30;
  tc.seed = 7;
  tc.mean_interarrival = 20'000;
  auto run = [&](std::vector<std::string>& log, std::string& report) {
    host::System sys;
    sched::Scheduler sc(sys);
    for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
    sc.run();
    log = sc.event_log();
    report = sched::render_report(sc);
  };
  std::vector<std::string> log1, log2;
  std::string rep1, rep2;
  run(log1, rep1);
  run(log2, rep2);
  EXPECT_EQ(log1, log2);   // bit-identical scheduler event order
  EXPECT_EQ(rep1, rep2);   // byte-identical report
  EXPECT_FALSE(log1.empty());
}

// ---- workload spec round-trip ---------------------------------------------

TEST(Workload, SaveLoadRoundTrips) {
  sched::TrafficConfig tc;
  tc.jobs = 12;
  tc.seed = 3;
  const auto jobs = sched::generate(tc);
  const std::string text = sched::save(jobs);
  std::istringstream in(text);
  const auto loaded = sched::load(in);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_EQ(loaded[i].tenant, jobs[i].tenant);
    EXPECT_EQ(loaded[i].kind, jobs[i].kind);
    EXPECT_EQ(loaded[i].rows, jobs[i].rows);
    EXPECT_EQ(loaded[i].cols, jobs[i].cols);
    EXPECT_EQ(loaded[i].priority, jobs[i].priority);
    EXPECT_EQ(loaded[i].arrival, jobs[i].arrival);
    EXPECT_EQ(loaded[i].deadline, jobs[i].deadline);
    EXPECT_EQ(loaded[i].timeout, jobs[i].timeout);
    EXPECT_EQ(loaded[i].iters, jobs[i].iters);
    EXPECT_EQ(loaded[i].block, jobs[i].block);
    EXPECT_EQ(loaded[i].launch_failures, jobs[i].launch_failures);
  }
  // save() of the loaded stream reproduces the exact bytes.
  EXPECT_EQ(sched::save(loaded), text);
}

TEST(Workload, JobKindNamesRoundTripForEveryKind) {
  // Exhaustive over kAllJobKinds so adding a JobKind without wiring its
  // to_string/parse_kind pair fails here rather than in a spec file later.
  for (const sched::JobKind k : sched::kAllJobKinds) {
    const char* name = sched::to_string(k);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    sched::JobKind parsed{};
    ASSERT_TRUE(sched::parse_kind(name, parsed)) << name;
    EXPECT_EQ(parsed, k) << name;
  }
  sched::JobKind k{};
  EXPECT_FALSE(sched::parse_kind("warp", k));
  EXPECT_FALSE(sched::parse_kind("", k));
  // The shmem kinds spell exactly as the spec-file grammar documents.
  ASSERT_TRUE(sched::parse_kind("cannon", k));
  EXPECT_EQ(k, sched::JobKind::CannonMatmul);
  ASSERT_TRUE(sched::parse_kind("transpose", k));
  EXPECT_EQ(k, sched::JobKind::Transpose);
}

TEST(Workload, GraphSpecsRoundTripForEveryKind) {
  // Exhaustive over kAllJobKinds (minus Custom, which graphs exclude): a
  // graph whose stages cover every drawable kind survives save -> load ->
  // re-save byte-identically, with graph/stage/deps fields intact. This is
  // the graph-serialisation extension of JobKindNamesRoundTripForEveryKind:
  // a new JobKind that breaks either the kind grammar or the pipeline tags
  // fails here before it can corrupt a spec file.
  sched::JobGraph g;
  g.id = 3;
  g.tenant = "erin";
  g.priority = 1;
  g.arrival = 500;
  g.deadline = 4'000'000;
  g.timeout = 8'000'000;
  for (const sched::JobKind k : sched::kAllJobKinds) {
    if (k == sched::JobKind::Custom) continue;
    g.stages.push_back({k, 2, 2, 1, 8});
  }
  ASSERT_GE(g.stages.size(), 2u);
  for (unsigned i = 0; i + 1 < g.stages.size(); ++i) {
    g.edges.push_back({i, i + 1, 1024 * (i + 1)});
  }
  const auto specs = sched::expand_graph(g, 0);
  const std::string text = sched::save(specs);
  std::istringstream in(text);
  const auto loaded = sched::load(in);
  ASSERT_EQ(loaded.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(loaded[i].kind, specs[i].kind);
    EXPECT_EQ(loaded[i].graph, specs[i].graph);
    EXPECT_EQ(loaded[i].stage, specs[i].stage);
    EXPECT_EQ(loaded[i].graph_stages, specs[i].graph_stages);
    EXPECT_EQ(loaded[i].deps, specs[i].deps);
    EXPECT_EQ(loaded[i].deadline, specs[i].deadline);
  }
  EXPECT_EQ(sched::save(loaded), text);
  // The re-derived plan expands to the same dependency structure: re-running
  // expand_graph on the original graph matches the loaded stream field-wise.
  const auto replan = sched::expand_graph(g, 0);
  for (std::size_t i = 0; i < replan.size(); ++i) {
    EXPECT_EQ(loaded[i].deps, replan[i].deps);
  }
}

TEST(MeshAllocator, PlaceNearNeverFailsWhenPlaceWouldSucceed) {
  // Property: co-placement is a *scoring* variant, not a feasibility
  // variant -- under mixed pipeline-shaped churn, place_near(anchors) must
  // succeed exactly when plain place() would (admission never deadlocks
  // because a stage asked to sit near its producer).
  sched::MeshAllocator a({8, 8});
  sim::Rng rng(99);
  const std::pair<unsigned, unsigned> shapes[] = {
      {1, 2}, {2, 2}, {2, 4}, {4, 4}, {1, 1}, {2, 8}};
  std::vector<sched::Placement> live;
  std::vector<sched::Placement> anchors;
  unsigned placements = 0;
  for (unsigned round = 0; round < 500; ++round) {
    const auto [r, c] = shapes[rng.next_below(std::size(shapes))];
    if (!anchors.empty() && rng.next_below(2) == 0) anchors.clear();
    // Probe plain first-fit feasibility on a copy of the *same* mesh state,
    // then ask the real allocator for a co-placed rect.
    sched::MeshAllocator probe = a;
    const auto pp = probe.place(r, c, /*allow_rotate=*/true);
    const auto pn = a.place_near(r, c, /*allow_rotate=*/true, anchors);
    ASSERT_EQ(pn.has_value(), pp.has_value())
        << "round " << round << " shape " << r << "x" << c;
    if (pn) {
      ++placements;
      live.push_back(*pn);
      anchors.push_back(*pn);
    }
    if (!live.empty() && rng.next_below(3) == 0) {
      const std::size_t v = rng.next_below(live.size());
      a.free(live[v]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(v));
      anchors.clear();  // stale anchors must still never break feasibility
    }
  }
  EXPECT_GT(placements, 100u);  // the churn actually exercised the mesh
  for (const auto& p : live) a.free(p);
  EXPECT_EQ(a.free_cores(), 64u);
}

TEST(Workload, LoadRejectsMalformedLines) {
  std::istringstream bad1("job id=0 kind=warp rows=1 cols=1\n");
  EXPECT_THROW((void)sched::load(bad1), std::runtime_error);
  std::istringstream bad2("task id=0\n");
  EXPECT_THROW((void)sched::load(bad2), std::runtime_error);
  std::istringstream bad3("job id=0 rows=banana\n");
  EXPECT_THROW((void)sched::load(bad3), std::runtime_error);
  std::istringstream ok("# comment\n\njob id=5 kind=stencil rows=2 cols=3\n");
  const auto jobs = sched::load(ok);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, 5u);
  EXPECT_EQ(jobs[0].kind, sched::JobKind::Stencil);
}

TEST(Workload, CustomJobsCannotComeFromSpecFiles) {
  std::istringstream custom("job id=0 kind=custom rows=1 cols=2\n");
  EXPECT_THROW((void)sched::load(custom), std::runtime_error);
}

// ---- admission-time lint gate (custom jobs) -------------------------------

sched::JobSpec custom_job(std::uint32_t id, const lint::fixtures::WgFixture& fx,
                          sim::Cycles arrival = 0) {
  sched::JobSpec s;
  s.id = id;
  s.kind = sched::JobKind::Custom;
  s.rows = fx.rows;
  s.cols = fx.cols;
  s.arrival = arrival;
  s.programs = fx.programs;
  return s;
}

TEST(LintGate, StrictRejectsStaticallyRacyJobBeforePlacement) {
  host::System sys;
  sched::SchedConfig cfg;
  cfg.lint = sched::LintMode::Strict;
  sched::Scheduler sc(sys, cfg);
  sc.submit(custom_job(1, lint::fixtures::listing12(/*racy=*/true)));
  sc.run();
  const auto& rec = sc.records()[0];
  EXPECT_EQ(rec.verdict, sched::Verdict::Rejected);
  EXPECT_NE(rec.detail.find("lint:"), std::string::npos) << rec.detail;
  EXPECT_NE(rec.detail.find("wg-race"), std::string::npos) << rec.detail;
  EXPECT_EQ(rec.started, 0u);  // rejected at admission, never placed
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.lint.rejects"), 1.0);
  // The decision log carries a structured lint-reject line.
  bool logged = false;
  for (const auto& line : sc.event_log()) {
    logged |= line.find("lint-reject job=1") != std::string::npos;
  }
  EXPECT_TRUE(logged);
}

TEST(LintGate, StrictAdmitsAndCompletesTheCleanTwin) {
  host::System sys;
  sched::SchedConfig cfg;
  cfg.lint = sched::LintMode::Strict;
  sched::Scheduler sc(sys, cfg);
  sc.submit(custom_job(1, lint::fixtures::listing12(/*racy=*/false)));
  sc.submit(custom_job(2, lint::fixtures::barrier_exchange(), 10));
  sc.run();
  for (const auto& rec : sc.records()) {
    EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  }
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.lint.rejects"), 0.0);
}

TEST(LintGate, WarnLogsButAdmits) {
  host::System sys;
  sched::SchedConfig cfg;
  cfg.lint = sched::LintMode::Warn;
  sched::Scheduler sc(sys, cfg);
  sc.submit(custom_job(1, lint::fixtures::listing12(/*racy=*/true)));
  sc.run();
  const auto& rec = sc.records()[0];
  EXPECT_EQ(rec.verdict, sched::Verdict::Completed) << rec.detail;
  bool warned = false;
  for (const auto& line : sc.event_log()) {
    warned |= line.find("lint-warn job=1") != std::string::npos;
  }
  EXPECT_TRUE(warned);
  EXPECT_DOUBLE_EQ(sc.counters().value("sched.lint.warnings"), 1.0);
}

TEST(LintGate, OffStillRejectsProgramsThatDoNotAssemble) {
  host::System sys;
  sched::Scheduler sc(sys);  // default config: lint off
  lint::fixtures::WgFixture fx;
  fx.rows = 1;
  fx.cols = 1;
  fx.programs.emplace_back("broken", "frobnicate r1, r2\nhalt\n");
  sc.submit(custom_job(1, fx));
  sc.run();
  const auto& rec = sc.records()[0];
  EXPECT_EQ(rec.verdict, sched::Verdict::Rejected);
  EXPECT_NE(rec.detail.find("lint:"), std::string::npos) << rec.detail;
}

TEST(LintGate, OffAdmitsTheRacyJobUnchecked) {
  host::System sys;
  sched::Scheduler sc(sys);  // default config: lint off
  sc.submit(custom_job(1, lint::fixtures::listing12(/*racy=*/true)));
  sc.run();
  // Off preserves pre-gate behaviour: the job runs (the serving model
  // executes custom programs solo, so the latent race does not bite here).
  EXPECT_EQ(sc.records()[0].verdict, sched::Verdict::Completed);
}

TEST(LintGate, RejectionIsDeterministic) {
  const auto once = [] {
    host::System sys;
    sched::SchedConfig cfg;
    cfg.lint = sched::LintMode::Strict;
    sched::Scheduler sc(sys, cfg);
    sc.submit(custom_job(1, lint::fixtures::listing12(/*racy=*/true)));
    sc.submit(custom_job(2, lint::fixtures::listing12(/*racy=*/false), 5));
    sc.run();
    std::string all = sc.records()[0].detail + "|" + sc.records()[1].detail;
    for (const auto& line : sc.event_log()) all += "\n" + line;
    return all;
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
