// Unit tests for the eMesh link model and the eLink arbiter.

#include <gtest/gtest.h>

#include <map>

#include "noc/elink.hpp"
#include "noc/mesh.hpp"
#include "sim/task.hpp"

namespace {

using namespace epi;
using arch::CoreCoord;
using sim::Cycles;

class MeshTest : public ::testing::Test {
protected:
  arch::MeshDims dims{8, 8};
  arch::TimingParams timing{};
  sim::Engine engine;
  noc::MeshNetwork mesh{dims, timing, engine};
};

TEST_F(MeshTest, DirectCopyCostMatchesTableOne) {
  // 20-word (80-byte) message, distance 1: 20 * 6.67 cycles = ~133.
  const Cycles adjacent = mesh.direct_copy_cycles({0, 0}, {0, 1}, 20);
  EXPECT_NEAR(static_cast<double>(adjacent), 20 * 6.67, 1.0);
  // Distance 14 costs ~7.54 cycles/word.
  const Cycles far = mesh.direct_copy_cycles({0, 0}, {7, 7}, 20);
  EXPECT_NEAR(static_cast<double>(far), 20 * (6.67 + 13 * 0.067), 1.0);
  EXPECT_GT(far, adjacent);
}

TEST_F(MeshTest, DirectCopyDistanceEffectIsSmall) {
  // Table I's headline: "surprisingly little effect of distance" -- under
  // 15% from distance 1 to distance 14.
  const auto d1 = static_cast<double>(mesh.direct_copy_cycles({0, 0}, {0, 1}, 100));
  const auto d14 = static_cast<double>(mesh.direct_copy_cycles({0, 0}, {7, 7}, 100));
  EXPECT_LT((d14 - d1) / d1, 0.15);
}

TEST_F(MeshTest, RemoteLoadSlowerThanStore) {
  EXPECT_GT(mesh.remote_load_cycles({0, 0}, {0, 1}), timing.remote_store_issue_cycles);
  EXPECT_GT(mesh.remote_load_cycles({0, 0}, {7, 7}),
            mesh.remote_load_cycles({0, 0}, {0, 1}));
}

TEST_F(MeshTest, ReservePathLocalIsFree) {
  EXPECT_EQ(mesh.reserve_path({2, 2}, {2, 2}, 1024, 100), 100u);
}

TEST_F(MeshTest, ReservePathChargesOccupancyAndHops) {
  // 800 bytes at 8 B/cycle = 100 cycles occupancy + 1 hop * 1.5 cycles.
  const Cycles done = mesh.reserve_path({0, 0}, {0, 1}, 800, 0);
  EXPECT_EQ(done, 100u + 2u);  // 1.5 rounds to 2
}

TEST_F(MeshTest, DisjointPathsDoNotContend) {
  const Cycles a = mesh.reserve_path({0, 0}, {0, 1}, 8000, 0);
  const Cycles b = mesh.reserve_path({7, 0}, {7, 1}, 8000, 0);
  EXPECT_EQ(a, b);  // same cost, no serialisation
}

TEST_F(MeshTest, SharedLinkSerialises) {
  // Two bursts over the same directed link: the second starts after the
  // first's occupancy.
  const Cycles first = mesh.reserve_path({0, 0}, {0, 1}, 8000, 0);
  const Cycles second = mesh.reserve_path({0, 0}, {0, 1}, 8000, 0);
  EXPECT_GE(second, first + 1000 - 2);
}

TEST_F(MeshTest, OppositeDirectionsDoNotContend) {
  const Cycles a = mesh.reserve_path({0, 0}, {0, 1}, 8000, 0);
  const Cycles b = mesh.reserve_path({0, 1}, {0, 0}, 8000, 0);
  EXPECT_EQ(a, b);
}

TEST_F(MeshTest, XYRoutingSharesColumnFirstSegment) {
  // (0,0)->(1,2) routes east twice then south; (0,0)->(0,2) uses the same
  // two eastward links, so they serialise.
  const Cycles a = mesh.reserve_path({0, 0}, {1, 2}, 800, 0);
  const Cycles b = mesh.reserve_path({0, 0}, {0, 2}, 800, 0);
  EXPECT_GT(b, a - 3);  // second burst pushed behind the first
}

// ---- eLink -----------------------------------------------------------------

class ELinkTest : public ::testing::Test {
protected:
  arch::MeshDims dims{8, 8};
  arch::TimingParams timing{};
  sim::Engine engine;
  noc::ELink elink{dims, timing, engine, timing.elink_write_overhead};

  sim::Process writer(CoreCoord c, std::uint32_t bytes, unsigned blocks,
                      Cycles* done_at = nullptr) {
    return sim::spawn(
        engine, [](noc::ELink& l, sim::Engine& e, CoreCoord cc, std::uint32_t b, unsigned n,
                   Cycles* d) -> sim::Op<void> {
          for (unsigned i = 0; i < n; ++i) co_await l.txn(cc, b);
          if (d) *d = e.now();
        }(elink, engine, c, bytes, blocks, done_at));
  }
};

TEST_F(ELinkTest, SingleWriterSeesSustainedRate) {
  Cycles done = 0;
  writer({0, 7}, 2048, 100, &done);
  engine.run();
  // 100 blocks * 2 KB at 150 MB/s = 819200 cycles (+ per-txn latency).
  const double expected = 100 * 2048 * 4.0;
  EXPECT_NEAR(static_cast<double>(done), expected, expected * 0.05);
}

TEST_F(ELinkTest, AggregateThroughputCappedAtSustainedRate) {
  for (unsigned r = 0; r < 8; ++r) {
    for (unsigned c = 0; c < 8; ++c) writer({r, c}, 2048, 4);
  }
  engine.run();
  const double seconds = static_cast<double>(engine.now()) / timing.clock_hz;
  const double mbps = static_cast<double>(elink.total_bytes_served()) / seconds / 1e6;
  EXPECT_LE(mbps, 151.0);
  EXPECT_GE(mbps, 140.0);
}

TEST_F(ELinkTest, PositionDependentShares) {
  // Saturate from every core for a fixed window; nearer the exit corner
  // (row 0, max column) must win more slots.
  for (unsigned r = 0; r < 8; ++r) {
    for (unsigned c = 0; c < 8; ++c) writer({r, c}, 2048, 1000);
  }
  engine.run_until(20'000'000);
  EXPECT_GE(elink.bytes_served({0, 7}), elink.bytes_served({4, 7}));
  EXPECT_GE(elink.bytes_served({0, 7}), elink.bytes_served({0, 0}));
  EXPECT_GT(elink.bytes_served({0, 7}), 0u);
  // Starvation: the far corner gets a small fraction of the winner.
  EXPECT_LT(static_cast<double>(elink.bytes_served({7, 0})),
            0.25 * static_cast<double>(elink.bytes_served({0, 7})));
}

TEST_F(ELinkTest, FairWithinTwoEqualWriters) {
  writer({0, 7}, 2048, 500);
  writer({1, 7}, 2048, 500);
  engine.run_until(4'000'000);
  const auto a = static_cast<double>(elink.bytes_served({0, 7}));
  const auto b = static_cast<double>(elink.bytes_served({1, 7}));
  // Round-robin at the merge point: within a factor ~2 of each other even
  // though the cascade favours row 0.
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  EXPECT_LT(a / b, 2.5);
}

TEST_F(ELinkTest, ReadOverheadIndependent) {
  noc::ELink rd(dims, timing, engine, timing.elink_read_overhead);
  Cycles done = 0;
  sim::spawn(engine,
             [](noc::ELink& l, sim::Engine& e, Cycles& d) -> sim::Op<void> {
               co_await l.txn({3, 3}, 4096);
               d = e.now();
             }(rd, engine, done));
  engine.run();
  EXPECT_GE(done, 4096u * 4);
}

}  // namespace
