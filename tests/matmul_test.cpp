// Tests for the matmul schedule model and the three kernel levels
// (single-core, on-chip Cannon, off-chip paged), plus the SUMMA extension.

#include <gtest/gtest.h>

#include "core/matmul.hpp"
#include "core/summa.hpp"

namespace {

using namespace epi;
using core::Codegen;
using core::MatmulSchedule;

// ---- schedule model ---------------------------------------------------------

TEST(MatmulSchedule, TableFourCalibration) {
  // Table IV: single-core GFLOPS 0.85 (8x8) ... 1.15 (32x32).
  const arch::TimingParams t{};
  const struct {
    unsigned n;
    double gf;
  } rows[] = {{8, 0.85}, {16, 1.07}, {20, 1.11}, {24, 1.12}, {32, 1.15}};
  for (const auto& r : rows) {
    const auto cy = MatmulSchedule::block_cycles(r.n, r.n, r.n, Codegen::TunedAsm);
    const double gf = t.gflops(MatmulSchedule::block_flops(r.n, r.n, r.n), cy);
    EXPECT_NEAR(gf, r.gf, 0.06) << r.n;
  }
}

TEST(MatmulSchedule, EfficiencyGrowsWithSize) {
  const arch::TimingParams t{};
  double prev = 0.0;
  for (unsigned n : {8u, 16u, 20u, 24u, 32u}) {
    const double gf = t.gflops(MatmulSchedule::block_flops(n, n, n),
                               MatmulSchedule::block_cycles(n, n, n, Codegen::TunedAsm));
    EXPECT_GT(gf, prev);
    prev = gf;
  }
}

TEST(MatmulSchedule, CCompilerAtSixtyPercent) {
  // Section VII: the C kernel reached "only 60% of peak performance".
  const auto tuned = MatmulSchedule::block_cycles(32, 32, 32, Codegen::TunedAsm);
  const auto cc = MatmulSchedule::block_cycles(32, 32, 32, Codegen::CCompiler);
  EXPECT_NEAR(static_cast<double>(tuned) / static_cast<double>(cc), 0.60, 0.01);
}

TEST(MatmulSchedule, DegenerateDimsFree) {
  EXPECT_EQ(MatmulSchedule::block_cycles(0, 8, 8, Codegen::TunedAsm), 0u);
  EXPECT_EQ(MatmulSchedule::block_cycles(8, 0, 8, Codegen::TunedAsm), 0u);
  EXPECT_EQ(MatmulSchedule::block_cycles(8, 8, 0, Codegen::TunedAsm), 0u);
}

// ---- single core ------------------------------------------------------------

class MatmulSingleSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(MatmulSingleSizes, BitExactVsReference) {
  const unsigned n = GetParam();
  host::System sys;
  auto r = core::run_matmul_single(sys, n, n, n, Codegen::TunedAsm, 100 + n, true);
  EXPECT_TRUE(r.verified) << "max error " << r.max_error;
  EXPECT_GT(r.gflops, 0.5);
  EXPECT_LT(r.gflops, 1.2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulSingleSizes, ::testing::Values(8u, 16u, 20u, 24u, 32u));

TEST(MatmulSingle, RectangularDims) {
  host::System sys;
  auto r = core::run_matmul_single(sys, 16, 32, 24, Codegen::TunedAsm, 5, true);
  EXPECT_TRUE(r.verified);
}

TEST(MatmulSingle, OversizedOperandsThrow) {
  host::System sys;
  EXPECT_THROW((void)core::run_matmul_single(sys, 64, 64, 64, Codegen::TunedAsm, 1, false),
               std::invalid_argument);
}

TEST(MatmulSingle, CCompilerSlowerSameResult) {
  host::System a, b;
  auto tuned = core::run_matmul_single(a, 16, 16, 16, Codegen::TunedAsm, 9, true);
  auto cc = core::run_matmul_single(b, 16, 16, 16, Codegen::CCompiler, 9, true);
  EXPECT_TRUE(tuned.verified);
  EXPECT_TRUE(cc.verified);
  EXPECT_GT(cc.cycles, tuned.cycles);
}

// ---- on-chip Cannon -----------------------------------------------------------

struct OnChipCase {
  unsigned g, b;
};

class MatmulOnChip : public ::testing::TestWithParam<OnChipCase> {};

TEST_P(MatmulOnChip, CorrectWithinFloatTolerance) {
  const auto p = GetParam();
  host::System sys;
  auto r = core::run_matmul_onchip(sys, p.g, p.b, Codegen::TunedAsm, p.g * 100 + p.b, true);
  EXPECT_TRUE(r.verified) << "g=" << p.g << " b=" << p.b << " err=" << r.max_error;
}

INSTANTIATE_TEST_SUITE_P(Groups, MatmulOnChip,
                         ::testing::Values(OnChipCase{2, 8}, OnChipCase{2, 16},
                                           OnChipCase{2, 32}, OnChipCase{3, 12},
                                           OnChipCase{4, 8}, OnChipCase{4, 24},
                                           OnChipCase{4, 32}, OnChipCase{8, 8},
                                           OnChipCase{8, 32}));

TEST(MatmulOnChipPerf, TableFiveEfficiencyBand32) {
  // Table V: 32x32 per-core blocks run at ~85% of peak on 2x2..8x8 groups.
  for (unsigned g : {2u, 4u, 8u}) {
    host::System sys;
    auto r = core::run_matmul_onchip(sys, g, 32, Codegen::TunedAsm, 3, false);
    const double peak = 1.2 * g * g;
    const double frac = r.gflops / peak;
    EXPECT_GT(frac, 0.78) << g;
    EXPECT_LT(frac, 0.93) << g;
  }
}

TEST(MatmulOnChipPerf, SmallBlocksCommBound) {
  // Table V: 8x8 per-core blocks reach only ~26% of peak.
  host::System sys;
  auto r = core::run_matmul_onchip(sys, 4, 8, Codegen::TunedAsm, 3, false);
  const double frac = r.gflops / (1.2 * 16);
  EXPECT_LT(frac, 0.45);
  EXPECT_GT(frac, 0.10);
}

TEST(MatmulOnChipPerf, EfficiencyGrowsWithBlockSize) {
  double prev = 0.0;
  for (unsigned b : {8u, 16u, 24u, 32u}) {
    host::System sys;
    auto r = core::run_matmul_onchip(sys, 2, b, Codegen::TunedAsm, 3, false);
    const double frac = r.gflops / (1.2 * 4);
    EXPECT_GT(frac, prev) << b;
    prev = frac;
  }
}

TEST(MatmulOnChip, RectangularBlocks) {
  host::System sys;
  auto r = core::run_matmul_onchip_rect(sys, 2, 16, 8, 24, Codegen::TunedAsm, 11, true);
  EXPECT_TRUE(r.verified) << r.max_error;
}

TEST(MatmulOnChip, OversizedBlockThrows) {
  host::System sys;
  EXPECT_THROW((void)core::run_matmul_onchip(sys, 2, 40, Codegen::TunedAsm, 1, false),
               std::invalid_argument);
}

// ---- off-chip paged -----------------------------------------------------------

TEST(MatmulOffChip, CorrectAt512WithSmallGroup) {
  // 2x2 group, 32x32 blocks, 128-superblocks, N=256: exercises multiple
  // superblock pages without the full 8x8 cost in a unit test.
  host::System sys;
  auto r = core::run_matmul_offchip(sys, 256, 2, 32, Codegen::TunedAsm, 17, true);
  EXPECT_TRUE(r.verified) << r.max_error;
  EXPECT_GT(r.transfer_fraction, r.compute_fraction);
}

TEST(MatmulOffChip, TransferDominatedLikeTableSix) {
  // Table VI: ~87-89% of time in shared-memory transfers, ~11-13% compute.
  host::System sys;
  auto r = core::run_matmul_offchip(sys, 512, 8, 32, Codegen::TunedAsm, 23, false);
  EXPECT_GT(r.transfer_fraction, 0.75);
  EXPECT_LT(r.compute_fraction, 0.25);
  // GFLOPS collapses to ~11% of peak.
  EXPECT_LT(r.gflops, 15.0);
  EXPECT_GT(r.gflops, 4.0);
}

TEST(MatmulOffChip, IndivisibleSizeThrows) {
  host::System sys;
  EXPECT_THROW((void)core::run_matmul_offchip(sys, 500, 8, 32, Codegen::TunedAsm, 1, false),
               std::invalid_argument);
}

// ---- SUMMA extension ----------------------------------------------------------

struct SummaCase {
  unsigned g, b;
};

class Summa : public ::testing::TestWithParam<SummaCase> {};

TEST_P(Summa, BitExactVsReference) {
  // SUMMA accumulates k-panels in ascending order, so it is bit-identical
  // to the host reference (unlike Cannon's rotated order).
  const auto p = GetParam();
  host::System sys;
  auto r = core::run_matmul_summa(sys, p.g, p.b, Codegen::TunedAsm, 31, true);
  EXPECT_EQ(r.max_error, 0.0f) << "g=" << p.g << " b=" << p.b;
}

INSTANTIATE_TEST_SUITE_P(Groups, Summa,
                         ::testing::Values(SummaCase{2, 8}, SummaCase{2, 24},
                                           SummaCase{4, 16}, SummaCase{8, 8}));

TEST(Summa, OversizedBlockThrows) {
  host::System sys;
  EXPECT_THROW((void)core::run_matmul_summa(sys, 2, 32, Codegen::TunedAsm, 1, false),
               std::invalid_argument);
}

TEST(Summa, CannonFasterOnRotationFriendlyMesh) {
  // Cannon's nearest-neighbour rotations beat SUMMA's broadcasts on a 2D
  // mesh (the reason the paper chose Cannon).
  host::System a, b;
  auto cannon = core::run_matmul_onchip(a, 4, 16, Codegen::TunedAsm, 3, false);
  auto summa = core::run_matmul_summa(b, 4, 16, Codegen::TunedAsm, 3, false);
  EXPECT_LT(cannon.cycles, summa.cycles);
}

}  // namespace
