// Tests for the conservative PDES executor (sim/parallel.hpp): the SPSC
// channel, window scheduling, the deterministic cross-domain merge, the
// lookahead contract, global-idle deadlock detection -- and the cluster
// serving layer's tentpole property, byte-identical output for every
// worker count.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sched/cluster.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace epi;

TEST(SpscChannel, FifoOrderSingleThread) {
  sim::SpscChannel<int> ch;
  EXPECT_TRUE(ch.empty());
  for (int i = 0; i < 100; ++i) ch.push(i);
  int v = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ch.pop(v));
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.total_pushed(), 100u);
}

TEST(SpscChannel, TwoThreadStream) {
  sim::SpscChannel<std::uint64_t> ch;
  constexpr std::uint64_t kN = 20'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN; ++i) ch.push(i);
  });
  std::uint64_t expect = 0, v = 0;
  while (expect < kN) {
    if (ch.pop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ch.empty());
}

// A minimal domain: its own engine, no host-side orchestration.
struct ToyDomain : sim::Domain {
  sim::Engine eng;
  sim::Engine& engine() override { return eng; }
  void advance(sim::Cycles limit) override {
    while (eng.step_below(limit)) {
    }
  }
  sim::Cycles next_time() override { return eng.next_event_time(); }
};

// Two domains ping-pong a token through the executor. The merged firing
// log (domain, cycle) must be identical for 1 and 2 workers, and the
// window count must match the schedule implied by the lookahead.
TEST(ParallelEngine, PingPongIdenticalAcrossWorkers) {
  constexpr sim::Cycles kLook = 450;
  constexpr int kHops = 16;

  auto run_once = [&](unsigned workers, sim::ParallelStats& stats_out) {
    ToyDomain a, b;
    sim::ParallelEngine pe(kLook);
    const sim::DomainId ia = pe.add_domain(a);
    const sim::DomainId ib = pe.add_domain(b);
    std::vector<std::pair<int, sim::Cycles>> log;

    // hop() runs on `self`'s engine; each hop re-sends to the peer until
    // the budget runs out. std::function self-reference via a small struct.
    struct Hopper {
      sim::ParallelEngine* pe;
      ToyDomain* doms[2];
      sim::DomainId ids[2];
      std::vector<std::pair<int, sim::Cycles>>* log;
      void hop(int side, int remaining) {
        ToyDomain& d = *doms[side];
        log->emplace_back(side, d.eng.now());
        if (remaining == 0) return;
        const int peer = 1 - side;
        const sim::Cycles at = d.eng.now() + kLook + 7;
        pe->send(ids[side], ids[peer], at,
                 static_cast<std::uint64_t>(remaining),
                 [this, peer, remaining] { hop(peer, remaining - 1); });
      }
    };
    Hopper h{&pe, {&a, &b}, {ia, ib}, &log};
    a.eng.call_at(5, [&h] { h.hop(0, kHops); });
    pe.run(workers);
    stats_out = pe.stats();
    return log;
  };

  sim::ParallelStats s1{}, s2{};
  const auto log1 = run_once(1, s1);
  const auto log2 = run_once(2, s2);
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(log1.size(), static_cast<std::size_t>(kHops + 1));
  EXPECT_EQ(s1.windows, s2.windows);
  EXPECT_EQ(s1.messages, s2.messages);
  EXPECT_EQ(s1.messages, static_cast<std::uint64_t>(kHops));
  EXPECT_EQ(s1.workers, 1u);
  EXPECT_EQ(s2.workers, 2u);
  // Each hop lands beyond the previous window (gap > lookahead), so every
  // hop opens its own window.
  EXPECT_EQ(s1.windows, static_cast<std::uint64_t>(kHops + 1));
}

// Same-cycle cross-domain messages from two sources merge by (key, src,
// seq), independent of which worker flushed first.
TEST(ParallelEngine, SameCycleMergeIsKeyOrdered) {
  auto run_once = [](unsigned workers) {
    ToyDomain src_a, src_b, dst;
    sim::ParallelEngine pe(100);
    const sim::DomainId ia = pe.add_domain(src_a);
    const sim::DomainId ib = pe.add_domain(src_b);
    const sim::DomainId id = pe.add_domain(dst);
    std::vector<int> order;
    // Both sources fire at cycle 10 and target cycle 110 on dst; keys are
    // chosen so key order disagrees with source order.
    src_a.eng.call_at(10, [&] {
      pe.send(ia, id, 110, 9, [&order] { order.push_back(9); });
      pe.send(ia, id, 110, 2, [&order] { order.push_back(2); });
    });
    src_b.eng.call_at(10, [&] {
      pe.send(ib, id, 110, 5, [&order] { order.push_back(5); });
    });
    pe.run(workers);
    return order;
  };
  const std::vector<int> want{2, 5, 9};
  EXPECT_EQ(run_once(1), want);
  EXPECT_EQ(run_once(3), want);
}

TEST(ParallelEngine, LookaheadViolationThrows) {
  ToyDomain a, b;
  sim::ParallelEngine pe(450);
  const sim::DomainId ia = pe.add_domain(a);
  const sim::DomainId ib = pe.add_domain(b);
  a.eng.call_at(100, [&] {
    pe.send(ia, ib, 100 + 449, 0, [] {});  // one cycle short of the contract
  });
  EXPECT_THROW(pe.run(1), std::logic_error);
}

TEST(ParallelEngine, SendOutsideRunThrows) {
  ToyDomain a, b;
  sim::ParallelEngine pe(450);
  const sim::DomainId ia = pe.add_domain(a);
  const sim::DomainId ib = pe.add_domain(b);
  EXPECT_THROW(pe.send(ia, ib, 1000, 0, [] {}), std::logic_error);
}

// A domain that goes idle with work it knows is unfinished must surface a
// DeadlockError at global idle (the cluster equivalent of a kernel that
// waits on a flag nobody will ever set).
TEST(ParallelEngine, UnfinishedWorkRaisesDeadlock) {
  struct StuckDomain final : ToyDomain {
    std::vector<std::string> unfinished() override { return {"stuck-kernel"}; }
  };
  StuckDomain d;
  sim::ParallelEngine pe(450);
  pe.add_domain(d);
  try {
    pe.run(1);
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-kernel"), std::string::npos);
  }
}

// ---- cluster serving layer ------------------------------------------------

sched::ClusterConfig small_cluster() {
  sched::ClusterConfig cfg;
  cfg.chip_rows = 2;
  cfg.chip_cols = 2;
  cfg.traffic.jobs = 8;
  cfg.traffic.seed = 11;
  cfg.traffic.mean_interarrival = 40'000;
  cfg.remote_frac = 0.4;
  return cfg;
}

TEST(Cluster, ReportByteIdenticalAcrossWorkers) {
  std::string ref;
  std::uint64_t ref_windows = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    sched::ClusterScheduler cs(small_cluster());
    cs.run(workers);
    EXPECT_EQ(cs.parallel_stats().workers, workers);
    if (ref.empty()) {
      ref = cs.report();
      ref_windows = cs.stats().windows;
      EXPECT_FALSE(ref.empty());
    } else {
      EXPECT_EQ(cs.report(), ref) << "workers=" << workers;
      EXPECT_EQ(cs.stats().windows, ref_windows);
    }
  }
}

TEST(Cluster, ForwardsJobsAndReturnsNotices) {
  sched::ClusterScheduler cs(small_cluster());
  cs.run(2);
  const sched::ClusterStats& st = cs.stats();
  EXPECT_EQ(st.chips, 4u);
  EXPECT_EQ(st.lookahead, 450u);
  EXPECT_GT(st.forwards, 0u);
  // Every forwarded job resolves exactly once, so every forward produces
  // exactly one completion notice back to its origin.
  EXPECT_EQ(st.notices, st.forwards);
  std::uint64_t delivered = 0;
  for (unsigned c = 0; c < st.chips; ++c) delivered += cs.notices(c).size();
  EXPECT_EQ(delivered, st.notices);
  // Forwarded jobs really ran on their home chip: records exist whose
  // origin differs from the chip that served them.
  std::uint64_t remote_records = 0;
  for (unsigned c = 0; c < st.chips; ++c) {
    for (const auto& rec : cs.chip_sched(c).records()) {
      EXPECT_EQ(rec.spec.home_chip, c);
      if (rec.spec.origin_chip != c) ++remote_records;
      EXPECT_NE(rec.verdict, sched::Verdict::Pending);
    }
  }
  EXPECT_EQ(remote_records, st.forwards);
}

TEST(Cluster, SingleChipDegeneratesCleanly) {
  sched::ClusterConfig cfg = small_cluster();
  cfg.chip_rows = cfg.chip_cols = 1;
  cfg.traffic.jobs = 6;
  sched::ClusterScheduler cs(cfg);
  cs.run(4);  // clamps to 1 worker: one domain
  EXPECT_EQ(cs.stats().forwards, 0u);
  EXPECT_EQ(cs.stats().notices, 0u);
  EXPECT_EQ(cs.parallel_stats().workers, 1u);
  for (const auto& rec : cs.chip_sched(0).records()) {
    EXPECT_NE(rec.verdict, sched::Verdict::Pending);
  }
}

}  // namespace
