// The static half of epi-lint: every pass is exercised twice -- once by a
// minimal seeded-defect fixture that must trip it (and nothing else), and
// once by the paper's real kernels, which must come out clean.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/kernels.hpp"
#include "lint/cfg.hpp"
#include "lint/lint.hpp"

namespace {

using namespace epi;
using namespace epi::lint;

std::vector<Finding> lint_text(const char* text, const LintOptions& opts = {}) {
  return lint_program(isa::assemble(text), opts);
}

std::size_t count_pass(const std::vector<Finding>& fs, const char* pass) {
  std::size_t n = 0;
  for (const auto& f : fs) {
    if (f.pass == pass) ++n;
  }
  return n;
}

std::string dump(const std::vector<Finding>& fs) {
  std::string s;
  for (const auto& f : fs) s += f.format("<test>") + "\n";
  return s;
}

// ---- the paper's kernels lint clean --------------------------------------

TEST(Lint, BuiltinStencilIsClean) {
  const auto prog =
      isa::assemble(isa::generate_stencil_stripe(4, util::StencilWeights{}, 880));
  const auto fs = lint_program(prog);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lint, BuiltinMatmulIsCleanWithLayout) {
  LintOptions opts;
  opts.layout = ScratchpadLayout{};
  opts.layout->add("A", RegionKind::Data, 0x0000, 0x1000)
      .add("B", RegionKind::Data, 0x1000, 0x1000)
      .add("C", RegionKind::Data, 0x2000, 0x1000);
  const auto fs = lint_program(isa::assemble(isa::generate_matmul_rows(32)), opts);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---- CFG construction ----------------------------------------------------

TEST(LintCfg, SplitsBlocksAtBranchesAndTargets) {
  const auto prog = isa::assemble(
      "mov r7, #4\n"
      "loop:\n"
      "sub r7, r7, #1\n"
      "bne loop\n"
      "halt\n");
  const Cfg cfg = Cfg::build(prog);
  ASSERT_EQ(cfg.blocks.size(), 3u);  // [mov], [sub,bne], [halt]
  EXPECT_EQ(cfg.blocks[0].succ, (std::vector<std::size_t>{1}));
  EXPECT_EQ(cfg.blocks[1].succ, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(cfg.blocks[2].ends_in_halt);
  EXPECT_TRUE(cfg.reachable[0] && cfg.reachable[1] && cfg.reachable[2]);
  const auto can = cfg.can_terminate();
  EXPECT_TRUE(can[0] && can[1] && can[2]);
}

// ---- seeded-defect fixtures: one finding each ----------------------------

TEST(Lint, UseBeforeDef) {
  const auto fs = lint_text(
      "mov r0, #0\n"
      "ldr r1, [r2, #0]\n"  // r2: nothing ever wrote it
      "str r1, [r0, #0]\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "use-before-def");
  EXPECT_EQ(fs[0].severity, Severity::Error);
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(Lint, OddLdrdPair) {
  // The assembler itself rejects odd pairs, so build the program by hand,
  // the way a buggy code generator would.
  isa::Program p;
  p.code.push_back({isa::Opcode::MovImm, 0, 0, 0, true, false, 0});
  p.code.push_back({isa::Opcode::Ldrd, 3, 0, 0, true, false, 8});
  p.code.push_back({isa::Opcode::Halt, 0, 0, 0, false, false, 0});
  const auto fs = lint_program(p);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "reg-pair");
  EXPECT_EQ(fs[0].severity, Severity::Error);
  EXPECT_EQ(fs[0].instr, 1u);
}

TEST(Lint, RegisterOutOfRange) {
  isa::Program p;
  p.code.push_back({isa::Opcode::MovReg, 2, 80, 0, false, false, 0});  // r80
  p.code.push_back({isa::Opcode::Halt, 0, 0, 0, false, false, 0});
  const auto fs = lint_program(p);
  ASSERT_EQ(count_pass(fs, "reg-range"), 1u) << dump(fs);
  EXPECT_TRUE(any_at_least(fs, Severity::Error));
}

TEST(Lint, MissingHalt) {
  const auto fs = lint_text(
      "mov r0, #0\n"
      "str r0, [r0, #0]\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "termination");
  EXPECT_EQ(fs[0].severity, Severity::Error);
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(Lint, StructurallyInfiniteLoop) {
  const auto fs = lint_text(
      "loop:\n"
      "b loop\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "termination");
  EXPECT_NE(fs[0].message.find("infinite"), std::string::npos);
}

TEST(Lint, CounterStepsPastZero) {
  const auto fs = lint_text(
      "mov r7, #5\n"
      "loop:\n"
      "sub r7, r7, #2\n"  // 5, 3, 1, -1, ... Z is never set
      "bne loop\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "termination");
  EXPECT_NE(fs[0].message.find("never reaches zero"), std::string::npos);
}

TEST(Lint, UnreachableCode) {
  const auto fs = lint_text(
      "b end\n"
      "mov r0, #1\n"
      "end:\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "unreachable");
  EXPECT_EQ(fs[0].severity, Severity::Warning);
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(Lint, FlagUsedBeforeSet) {
  const auto fs = lint_text(
      "mov r0, #0\n"
      "str r0, [r0, #0]\n"
      "bne skip\n"  // no add/sub has set Z yet
      "skip:\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "flag-undef");
  EXPECT_EQ(fs[0].severity, Severity::Warning);
}

TEST(Lint, DeadStore) {
  const auto fs = lint_text(
      "mov r0, #1\n"  // overwritten before any use
      "mov r0, #2\n"
      "mov r1, #0\n"
      "str r0, [r1, #0]\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "dead-store");
  EXPECT_EQ(fs[0].line, 1u);
}

TEST(Lint, ConstantAddressOutsideExtent) {
  const auto fs = lint_text(
      "mov r0, #32768\n"
      "mov r1, #0\n"
      "str r1, [r0, #0]\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "mem-extent");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(Lint, DeclaredExtentIsRespected) {
  LintOptions opts;
  opts.extent = 1024;
  const auto fs = lint_text(
      "mov r0, #1024\n"
      "mov r1, #0\n"
      "str r1, [r0, #0]\n"
      "halt\n",
      opts);
  ASSERT_EQ(count_pass(fs, "mem-extent"), 1u) << dump(fs);
}

TEST(Lint, PostmodifyStrideWalksOutOfScratchpad) {
  const auto fs = lint_text(
      "mov r0, #0\n"
      "mov r1, #0\n"
      "mov r7, #64\n"
      "loop:\n"
      "str r1, [r0], #1024\n"  // 64 iterations x 1 KB = 64 KB walk
      "sub r7, r7, #1\n"
      "bne loop\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "mem-extent");
  EXPECT_EQ(fs[0].line, 5u);
  EXPECT_NE(fs[0].message.find("stride"), std::string::npos);
}

TEST(Lint, InBoundsStrideIsClean) {
  const auto fs = lint_text(
      "mov r0, #0\n"
      "mov r1, #4096\n"
      "mov r7, #64\n"
      "loop:\n"
      "ldr r2, [r0], #4\n"
      "str r2, [r1], #4\n"
      "sub r7, r7, #1\n"
      "bne loop\n"
      "halt\n");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lint, BankStraddle) {
  const auto fs = lint_text(
      "mov r0, #8190\n"
      "mov r1, #0\n"
      "str r1, [r0, #0]\n"  // bytes 8190..8193 cross the bank-0/bank-1 line
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "bank-straddle");
  EXPECT_EQ(fs[0].severity, Severity::Warning);
}

TEST(Lint, StoreIntoCodeRegion) {
  LintOptions opts;
  opts.code_region = Region{"kernel", RegionKind::Code, 0x0000, 0x0800};
  const auto fs = lint_text(
      "mov r0, #16\n"
      "mov r1, #1\n"
      "str r1, [r0, #0]\n"
      "halt\n",
      opts);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "code-write");
  EXPECT_EQ(fs[0].severity, Severity::Error);
}

TEST(Lint, StridedStoreIntoCodeRegion) {
  LintOptions opts;
  opts.code_region = Region{"kernel", RegionKind::Code, 0x1000, 0x0800};
  const auto fs = lint_text(
      "mov r0, #0\n"
      "mov r1, #0\n"
      "mov r7, #8\n"
      "loop:\n"
      "str r1, [r0], #1024\n"  // iteration 4 lands at 0x1000
      "sub r7, r7, #1\n"
      "bne loop\n"
      "halt\n",
      opts);
  ASSERT_EQ(count_pass(fs, "code-write"), 1u) << dump(fs);
}

TEST(Lint, EmptyProgramIsATerminationError) {
  const auto fs = lint_program(isa::Program{});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pass, "termination");
}

// ---- scratchpad layout checker -------------------------------------------

TEST(LintLayout, OverlapIsAnError) {
  ScratchpadLayout l;
  l.add("code", RegionKind::Code, 0x0000, 0x2000)
      .add("data", RegionKind::Data, 0x1800, 0x1000);
  const auto fs = check_layout(l);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "layout-overlap");
  EXPECT_EQ(fs[0].severity, Severity::Error);
}

TEST(LintLayout, BudgetOverflowIsAnError) {
  ScratchpadLayout l;
  l.add("big", RegionKind::Data, 0x7000, 0x2000);  // ends at 36 KB
  const auto fs = check_layout(l);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "layout-overflow");
}

TEST(LintLayout, CodeSharingABankWithDataIsANote) {
  ScratchpadLayout l;
  l.add("code", RegionKind::Code, 0x0000, 0x1000)
      .add("in", RegionKind::Data, 0x1000, 0x1000);  // same 8 KB bank as code
  const auto fs = check_layout(l);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].pass, "layout-bank-sharing");
  EXPECT_EQ(fs[0].severity, Severity::Note);
}

TEST(LintLayout, SeparateBanksAreClean) {
  ScratchpadLayout l;
  l.add("code", RegionKind::Code, 0x0000, 0x2000)
      .add("in", RegionKind::Data, 0x2000, 0x2000)
      .add("out", RegionKind::Data, 0x4000, 0x2000)
      .add("stack", RegionKind::Stack, 0x6000, 0x2000);
  const auto fs = check_layout(l);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintLayout, EmptyRegionIsAWarning) {
  ScratchpadLayout l;
  l.add("dma", RegionKind::Dma, 0x4000, 0);
  const auto fs = check_layout(l);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pass, "layout-empty");
  EXPECT_EQ(fs[0].severity, Severity::Warning);
}

TEST(LintLayout, LayoutCodeRegionFeedsStoreChecks) {
  LintOptions opts;
  opts.layout = ScratchpadLayout{};
  opts.layout->add("code", RegionKind::Code, 0x0000, 0x2000)
      .add("data", RegionKind::Data, 0x2000, 0x2000);
  const auto fs = lint_text(
      "mov r0, #64\n"
      "mov r1, #7\n"
      "str r1, [r0, #0]\n"  // 0x40 is inside the declared code region
      "halt\n",
      opts);
  EXPECT_EQ(count_pass(fs, "code-write"), 1u) << dump(fs);
}

// ---- diagnostics carry source lines --------------------------------------

TEST(Lint, FindingsCarrySourceLinesThroughCommentsAndLabels) {
  const auto fs = lint_text(
      "; a comment line\n"
      "\n"
      "mov r0, #0\n"
      "ldr r1, [r2, #0]   ; seeded use-before-def\n"
      "str r1, [r0, #0]\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].line, 4u);
  EXPECT_NE(fs[0].format("kernel.s").find("kernel.s:4: error:"), std::string::npos);
}

TEST(Lint, FormatFallsBackToInstructionIndexWithoutALine) {
  // Hand-built Programs carry no source lines; the diagnostic must anchor
  // to the instruction index instead of printing a misleading ":0:".
  lint::Finding f;
  f.pass = "mem-extent";
  f.severity = lint::Severity::Error;
  f.instr = 7;
  f.line = 0;
  f.message = "store past the declared extent";
  EXPECT_EQ(f.format("prog"),
            "prog:<instr#7>: error: store past the declared extent [mem-extent]");
  f.instr = lint::Finding::kNoInstr;
  EXPECT_EQ(f.format("prog"),
            "prog: error: store past the declared extent [mem-extent]");
}

TEST(Lint, FindingsAreOrderedByInstruction) {
  const auto fs = lint_text(
      "mov r0, #1\n"   // dead store (instr 0)
      "mov r0, #2\n"
      "mov r1, #0\n"
      "str r0, [r1, #0]\n"
      "bne done\n"     // flag-undef (instr 4)... Z set? no add/sub: undefined
      "done:\n"
      "halt\n");
  ASSERT_EQ(fs.size(), 2u) << dump(fs);
  EXPECT_LT(fs[0].instr, fs[1].instr);
}

}  // namespace
