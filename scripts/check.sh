#!/usr/bin/env bash
# Full verification sweep: a Release build with the normal test suite, then
# a Debug build with AddressSanitizer/UBSan (-DEPI_SANITIZE=ON) running the
# same suite, then a ThreadSanitizer build (-DEPI_SANITIZE=tsan) running the
# threaded PDES executor tests plus a small parallel cluster serve. Run from
# the repository root:
#
#     scripts/check.sh [extra ctest args...]
#
# Set EPI_SKIP_TSAN=1 to stop after the ASan sweep (CI runs the TSan stage
# as its own parallel job).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== Release build =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}" "$@"

echo "== Cluster chaos smoke (Release) =="
# One seeded chip-level chaos serve per worker count: chip crashes, bridge
# outages, and lost/corrupted notices must all recover (no wedged graphs,
# zero unresolved jobs) with byte-identical reports across worker counts.
./build-release/tools/epi_fault --chaos-smoke --chips=2x2

echo "== Simulator-performance smoke (Release only) =="
# abl_simperf must only ever run from a Release tree: the binary exits
# non-zero when built without NDEBUG, so a mis-wired build type fails the
# sweep loudly here instead of producing garbage numbers.
./build-release/bench/abl_simperf \
    --benchmark_filter=BM_EngineEventThroughput --benchmark_min_time=0.05 \
    --benchmark_out=/dev/null --benchmark_out_format=json

echo "== Sanitized debug build (ASan+UBSan) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DEPI_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
# Leak checking stays off: the deadlock-detection tests deliberately abandon
# suspended coroutine frames (the engine does not own them), which LSan
# reports at exit. ASan/UBSan proper remain fully enabled.
ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" "$@"

if [[ "${EPI_SKIP_TSAN:-0}" == 1 ]]; then
  echo "== ThreadSanitizer stage skipped (EPI_SKIP_TSAN=1) =="
  echo "All checks passed."
  exit 0
fi

echo "== ThreadSanitizer build (PDES executor) =="
# TSan checks the genuinely multi-threaded code: the SPSC channels, the
# window barrier, and the cluster executor. The sim/parallel test binaries
# cover the synchronisation paths; the epi_serve cluster selftest then runs
# a real multi-chip serve at several worker counts under TSan.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DEPI_SANITIZE=tsan
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R '(Parallel|Cluster|Spsc|Engine|Determinism)' "$@"
./build-tsan/tools/epi_serve --chips=2x2 --jobs=6 --parallel=4 --selftest \
    > /dev/null
# And the same under chip-level chaos: the failover stack (heartbeats,
# quarantine, re-forwarding) exchanges cross-domain messages every window,
# so it runs under TSan at several worker counts too.
./build-tsan/tools/epi_fault --chaos-smoke --chips=2x2 > /dev/null

echo "All checks passed."
