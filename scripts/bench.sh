#!/usr/bin/env bash
# Simulator performance benchmarks: Release build, then
#   * abl_simperf  -> BENCH_simperf.json (wall-clock engine throughput)
#   * abl_sched    -> BENCH_sched.json   (serving throughput/latency sweep)
#   * abl_faults   -> BENCH_faults.json  (goodput/detection under injected faults)
#   * abl_cluster_faults -> BENCH_cluster_faults.json (cluster goodput/recovery
#                           under chip crashes, link outages, lost notices)
#   * abl_shmem    -> BENCH_shmem.json   (PGAS put/get/barrier/reduce sweep)
#   * abl_dag      -> BENCH_dag.json     (pipeline overlap/handoff policy ablation)
# all written at the repository root. Run from anywhere:
#
#     scripts/bench.sh [extra google-benchmark args...]
#
# The committed BENCH_*.json files are the regression baselines; re-run this
# script and commit the new files to move them. CI compares fresh results
# against the committed baselines and warns on a >20% drop.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== Release build =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}" --target abl_simperf abl_sched abl_faults abl_cluster_faults abl_shmem abl_dag

echo "== abl_simperf (results -> BENCH_simperf.json) =="
# Debian's libbenchmark is packaged with an unset build type, so the library
# itself prints a spurious "Library was built as DEBUG" banner to stderr.
# Our binary *is* a Release build (it refuses to run otherwise -- see the
# NDEBUG guard in bench/abl_simperf.cpp); drop that one known-bogus line and
# pass every other stderr line through.
./build-release/bench/abl_simperf \
    --benchmark_out=BENCH_simperf.json --benchmark_out_format=json "$@" \
    2> >(grep -v '^\*\*\*WARNING\*\*\* Library was built as DEBUG' >&2)

echo "Wrote $(pwd)/BENCH_simperf.json"

echo "== abl_sched (results -> BENCH_sched.json) =="
./build-release/bench/abl_sched --metrics=BENCH_sched.json

echo "Wrote $(pwd)/BENCH_sched.json"

echo "== abl_faults (results -> BENCH_faults.json) =="
./build-release/bench/abl_faults --metrics=BENCH_faults.json

echo "Wrote $(pwd)/BENCH_faults.json"

echo "== abl_cluster_faults (results -> BENCH_cluster_faults.json) =="
./build-release/bench/abl_cluster_faults --metrics=BENCH_cluster_faults.json

echo "Wrote $(pwd)/BENCH_cluster_faults.json"

echo "== abl_shmem (results -> BENCH_shmem.json) =="
./build-release/bench/abl_shmem --metrics=BENCH_shmem.json

echo "Wrote $(pwd)/BENCH_shmem.json"

echo "== abl_dag (results -> BENCH_dag.json) =="
./build-release/bench/abl_dag --metrics=BENCH_dag.json

echo "Wrote $(pwd)/BENCH_dag.json"
